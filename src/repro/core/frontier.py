"""Pluggable frontier policies: the worklist-discipline layer.

The paper's central comparison is between *worklist disciplines* — a
per-block local stack (StackOnly), a pure global worklist (GlobalOnly),
and the hybrid threshold scheme (Fig. 4) — all running the **same**
branch-and-reduce node step.  This module makes that separation explicit:
a :class:`Frontier` holds the pending tree nodes and decides which one is
processed next, while :mod:`repro.core.nodestep` owns what happens *at*
a node.  Every engine composes the two; no engine re-implements either.

Single-owner policies (used directly by the sequential solver and by the
``repro solve --frontier`` CLI, and embedded per-worker inside the real
CPU engines):

* :class:`LifoFrontier` — depth-first local stack, the Fig. 1 baseline;
* :class:`GlobalWorklistFrontier` — FIFO worklist, the Section IV-A
  breadth-first ablation in sequential form;
* :class:`HybridThresholdFrontier` — Fig. 4's donation policy: feed a
  (FIFO) shared pool while it is hungry, otherwise go depth-first;
* :class:`StealingDequeFrontier` — per-lane deques with oldest-first
  stealing, the classic CPU work-stealing discipline
  (:mod:`repro.engines.cpu_worksteal` drives its lane API under a lock);
* :class:`BestFirstFrontier` — **new scenario**: a priority queue ordered
  by the greedy bound ``|S| + ceil(|E'| / Δ')``, expanding the most
  promising subproblem first.

Concurrency note: frontiers are plain data structures with no internal
locking.  The sequential solver owns one outright; the thread/process
engines guard theirs with their own condition variables or locks (the
coordination protocol — waiting, idle consensus, termination — is engine
logic, not ordering policy, and stays in the engines).  The simulated-GPU
engines realise the same policies in cycle-charged form: the bounded
:class:`repro.sim.local_stack.LocalStack` *is* a ``LifoFrontier`` with a
depth bound, the :class:`repro.sim.broker.BrokerWorklist` plays the
shared pool, and :func:`hybrid_should_donate` is the one shared
threshold predicate every hybrid variant consults.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Frontier",
    "LifoFrontier",
    "GlobalWorklistFrontier",
    "HybridThresholdFrontier",
    "StealingDequeFrontier",
    "BestFirstFrontier",
    "greedy_bound_key",
    "hybrid_should_donate",
    "FRONTIERS",
    "make_frontier",
]


def hybrid_should_donate(population: int, threshold: int) -> bool:
    """Fig. 4 lines 23-26: donate to the shared pool while it is hungry.

    The one place the hybrid threshold policy is written down.  Consulted
    by the simulated :class:`~repro.engines.hybrid.HybridEngine`, the real
    thread/process engines, and :class:`HybridThresholdFrontier`.
    """
    return population < threshold


class Frontier:
    """A pool of pending tree nodes plus the policy choosing the next one.

    Items are opaque to the policy (the sequential solver stores
    ``(state, depth)`` tuples; the CPU engines store bare states), except
    for :class:`BestFirstFrontier`, whose key function must understand
    them.  ``pop`` returns ``None`` when the frontier is empty — frontiers
    never block; waiting and termination are the engine's concern.
    """

    __slots__ = ()

    def push(self, item: Any) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[Any]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def drain(self) -> List[Any]:
        """Pop everything, in the policy's own order (for checkpointing).

        The anytime layer (:mod:`repro.core.outcome`) serializes an
        interrupted traversal's frontier with this; afterwards the
        frontier is empty.
        """
        items: List[Any] = []
        pop = self.pop
        while True:
            item = pop()
            if item is None:
                return items
            items.append(item)


class LifoFrontier(Frontier):
    """Depth-first stack: always expand the most recently deferred child."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: List[Any] = []

    def push(self, item: Any) -> None:
        self._items.append(item)

    def pop(self) -> Optional[Any]:
        items = self._items
        return items.pop() if items else None

    def __len__(self) -> int:
        return len(self._items)


class GlobalWorklistFrontier(Frontier):
    """FIFO worklist: oldest-first, the breadth-first Section IV-A discipline."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: deque = deque()

    def push(self, item: Any) -> None:
        self._items.append(item)

    def pop(self) -> Optional[Any]:
        items = self._items
        return items.popleft() if items else None

    def __len__(self) -> int:
        return len(self._items)


class HybridThresholdFrontier(Frontier):
    """Fig. 4's hybrid policy as a single-owner frontier.

    A push *donates* the item to the shared FIFO pool while its population
    is below ``threshold``; otherwise the item stays on the local
    depth-first stack.  A pop drains the local stack first and only then
    turns to the pool — the order that keeps worklist contention low on
    the device (Section IV-A).  The pool therefore never exceeds
    ``threshold`` entries here; a separate hard capacity only matters
    with concurrent producers, which is the simulated
    :class:`~repro.sim.broker.BrokerWorklist`'s job, not this policy's.
    ``donated``/``kept`` count the two outcomes for the sweep harnesses.
    """

    __slots__ = ("threshold", "local", "pool", "donated", "kept")

    def __init__(self, threshold: int = 32) -> None:
        if threshold < 1:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.local = LifoFrontier()
        self.pool = GlobalWorklistFrontier()
        self.donated = 0
        self.kept = 0

    def push(self, item: Any) -> None:
        if hybrid_should_donate(len(self.pool), self.threshold):
            self.pool.push(item)
            self.donated += 1
        else:
            self.local.push(item)
            self.kept += 1

    def pop(self) -> Optional[Any]:
        item = self.local.pop()
        if item is not None:
            return item
        return self.pool.pop()

    def __len__(self) -> int:
        return len(self.local) + len(self.pool)


class StealingDequeFrontier(Frontier):
    """Per-lane deques, own-end pops, oldest-first steals.

    The decentralised alternative to the hybrid's central pool: every lane
    (worker) pushes and pops at its own deque's young end and, when empty,
    steals the *oldest* entry from a random victim — oldest being closest
    to the victim's sub-tree root, i.e. the biggest stolen sub-tree (the
    standard heuristic).  :mod:`repro.engines.cpu_worksteal` drives the
    lane API (:meth:`push_lane` / :meth:`pop_own` / :meth:`steal`) under
    its own lock; the single-owner :meth:`push`/:meth:`pop` interface
    round-robins pushes across lanes, which makes the same schedule
    explorable sequentially (``repro solve --frontier stealing``).
    """

    __slots__ = ("lanes", "steals", "_rng", "_push_cursor")

    def __init__(self, n_lanes: int = 4, seed: int = 0) -> None:
        if n_lanes < 1:
            raise ValueError("n_lanes must be positive")
        self.lanes: List[deque] = [deque() for _ in range(n_lanes)]
        self.steals = 0
        self._rng = random.Random(seed)
        self._push_cursor = 0

    # ------------------------------------------------------------------ #
    # lane API (cpu_worksteal drives these under its shared lock)
    # ------------------------------------------------------------------ #
    def push_lane(self, lane: int, item: Any) -> None:
        self.lanes[lane].append(item)

    def pop_own(self, lane: int) -> Optional[Any]:
        own = self.lanes[lane]
        return own.pop() if own else None

    def steal(self, lane: int) -> Optional[Any]:
        """Steal the oldest entry from a random non-empty victim lane."""
        victims = [v for v in range(len(self.lanes)) if v != lane]
        self._rng.shuffle(victims)
        for victim in victims:
            if self.lanes[victim]:
                self.steals += 1
                return self.lanes[victim].popleft()
        return None

    # ------------------------------------------------------------------ #
    # single-owner Frontier API
    # ------------------------------------------------------------------ #
    def push(self, item: Any) -> None:
        self.push_lane(self._push_cursor, item)
        self._push_cursor = (self._push_cursor + 1) % len(self.lanes)

    def pop(self) -> Optional[Any]:
        # The single owner is lane 0: it drains its own deque and steals
        # the rest, so round-robin pushes surface as counted steals — the
        # sequential emulation of one worker amid idle victims.
        item = self.pop_own(0)
        if item is not None:
            return item
        return self.steal(0)

    def __len__(self) -> int:
        return sum(len(lane) for lane in self.lanes)


def greedy_bound_key(item: Any) -> int:
    """Priority of a frontier item: ``|S|`` plus a greedy cover lower bound.

    Any cover of the remaining graph needs at least ``ceil(|E'| / Δ')``
    vertices (each can cover at most ``Δ'`` edges), so
    ``|S| + ceil(|E'| / Δ')`` lower-bounds every solution below the node —
    the same quantity the greedy heuristic's first step optimises.  Uses
    the carried stale-high ``max_deg_hint`` when present (a too-large
    ``Δ'`` only loosens the ordering, never correctness) and falls back to
    one degree scan.  Items may be bare states or ``(state, ...)`` tuples.
    """
    state = item[0] if isinstance(item, tuple) else item
    edges = state.edge_count
    if edges <= 0:
        return state.cover_size
    max_deg = state.max_deg_hint
    if max_deg <= 0:
        max_deg = int(state.deg.max())
        if max_deg <= 0:  # pragma: no cover - edge_count > 0 implies a degree
            max_deg = 1
    return state.cover_size + -(-edges // max_deg)


class BestFirstFrontier(Frontier):
    """Priority frontier ordered by :func:`greedy_bound_key` (new scenario).

    Expands the subproblem with the smallest optimistic bound first, which
    tends to drive the incumbent down early and prune the rest — a
    discipline none of the paper's engines use, enabled here by the
    frontier/step separation.  Ties break by insertion order, keeping the
    traversal deterministic.  When the traversal runs a non-default bound
    policy, :func:`make_frontier` keys the heap by that policy's
    ``|S| + lower_bound`` instead (see :mod:`repro.core.bounds`).
    """

    __slots__ = ("_heap", "_seq", "key")

    def __init__(self, key: Callable[[Any], int] = greedy_bound_key) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = 0
        self.key = key

    def push(self, item: Any) -> None:
        heapq.heappush(self._heap, (self.key(item), self._seq, item))
        self._seq += 1

    def pop(self) -> Optional[Any]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


#: Named frontier factories for the CLI and the sweep harnesses.
FRONTIERS: Dict[str, Callable[[], Frontier]] = {
    "lifo": LifoFrontier,
    "fifo": GlobalWorklistFrontier,
    "hybrid": HybridThresholdFrontier,
    "stealing": StealingDequeFrontier,
    "best-first": BestFirstFrontier,
}


def make_frontier(name: str, bound: Optional[Any] = None) -> Frontier:
    """Instantiate a registered frontier policy by name.

    ``bound`` is the traversal's active
    :class:`~repro.core.bounds.BoundPolicy`, if any: ``best-first``
    orders its heap by that policy's ``|S| + lower_bound`` key instead
    of the built-in greedy key, so a stronger bound sharpens both the
    pruning *and* the expansion order.  Ordering evaluations are a
    heuristic outside the charge meter, like the built-in greedy key
    (an expensive bound here buys order quality with unmetered work).
    The default (no bound, or the ``greedy`` policy) keeps
    :func:`greedy_bound_key` — the two compute the same quantity, so
    default traversals are unchanged.
    """
    try:
        factory = FRONTIERS[name]
    except KeyError:
        raise ValueError(
            f"unknown frontier {name!r}; choose from {sorted(FRONTIERS)}"
        ) from None
    if (
        name == "best-first"
        and bound is not None
        and getattr(bound, "name", "greedy") != "greedy"
    ):
        return BestFirstFrontier(key=bound.frontier_key)
    return factory()
