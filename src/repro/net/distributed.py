"""The eighth engine: the supervised lease protocol over sockets.

A coordinator runs the PR 6 supervision state machine — single work
ledger, leases charged until ``lease_done``, dead peers re-enqueued —
over :class:`~repro.net.transport.MessageStream` connections instead of
``multiprocessing`` queues.  Workers are plain socket clients: the
engine spawns ``n_workers`` of them as local processes that connect to
the coordinator's loopback port (so every run, including CI, exercises
the real socket path), spawns ``hosts`` additional ``repro serve-worker``
*subprocesses* (cold Python interpreters simulating extra hosts on
localhost), and accepts any externally launched
``repro serve-worker --connect HOST:PORT`` into the same pool.

Workers never receive the graph through process arguments.  The
handshake offers the shared-memory graph plane (:mod:`repro.graph.plane`)
by name; a same-host worker attaches it zero-copy, a remote one answers
``need_graph`` and receives the CSR arrays inline, once.  After that,
only codec frames, incumbent sizes and counters cross the wire — the
incumbent broadcast is the only shared mutable state, exactly as in the
paper's GPU formulation.

Protocol (all messages are pickled tuples; see ``net/transport.py``):

====================  =============================================
worker -> coordinator  coordinator -> worker
====================  =============================================
``("hello", pid)``     ``("plane", name|None, n, nidx)``
``("attached",)`` /    ``("graph", indptr, indices)`` (on demand)
``("need_graph",)``    ``("init", params)``
``("ready",)``         ``("work", [payload, ...], depth)``
``("lease_done",)``
``("donate", [payload, ...])``
``("best", size, payload)``   ``("best", size, depth)``
``("nodes", delta)``   ``("done",)``
``("result", nodes, leftovers, recovered, comms)``
====================  =============================================

A lease is charged to a connection the moment the ``work`` frame is
written; a connection that dies — EOF, reset, torn frame — before its
``lease_done`` gets its batch re-enqueued, exactly like a dead local
worker, and the slot is respawned with the same bounded-retry policy.
If every peer is gone with work outstanding, the coordinator drains the
remainder inline through the sequential solver.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..core.formulation import Formulation
from ..core.frontier import LifoFrontier
from ..core.greedy import greedy_cover
from ..core.kernel_backends import resolve_kernels
from ..core.nodestep import LEAF, PRUNED, NodeStep
from ..engines.cpu_process import (
    LEASE_BATCH,
    MAX_RESPAWNS,
    CommStats,
    _codec_fns,
    _drain_inline,
)
from ..engines.cpu_threads import CpuParallelResult
from ..graph.csr import CSRGraph
from ..graph.degree_array import VCState, Workspace, decode_wire, fresh_state, wire_nbytes
from ..graph.plane import GraphPlane, publish_plane
from ..obs import breakdown as obs_breakdown
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .transport import MessageStream, ProtocolError, TransportClosed

__all__ = ["solve_mvc_distributed", "solve_pvc_distributed", "run_worker_client"]

#: How long the coordinator waits for the first worker to finish its
#: handshake before concluding nobody is coming and draining inline.
_CONNECT_GRACE_S = 10.0

#: Wind-down budget: how long to wait for ``result`` frames after ``done``.
_WINDDOWN_S = 10.0

#: Worker-side cadence: node-count deltas flushed every this many nodes.
_NODES_FLUSH = 64

_STOP_NONE, _STOP_BUDGET, _STOP_DEADLINE = 0, 1, 2


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
class _RemoteMVC(Formulation):
    """MVC against a locally cached incumbent, refreshed by broadcast."""

    name = "mvc"

    def __init__(self, initial_best: int):
        self.best_size = initial_best
        self.local_best: Optional[VCState] = None
        self.improved = False

    def budget(self, cover_size: int) -> int:
        return self.best_size - cover_size - 1

    def accept(self, state: VCState) -> bool:
        if state.cover_size < self.best_size:
            self.best_size = state.cover_size
            self.local_best = state.copy()
            self.improved = True
        return False


class _RemotePVC(Formulation):
    """PVC: first worker to find a k-cover reports it; coordinator stops all."""

    name = "pvc"

    def __init__(self, k: int):
        self.k = k
        self.found = False
        self.local_best: Optional[VCState] = None
        self.improved = False

    def budget(self, cover_size: int) -> int:
        return self.k - cover_size

    def accept(self, state: VCState) -> bool:
        if state.cover_size <= self.k:
            self.local_best = state.copy()
            self.improved = True
            self.found = True
            return True
        return False

    def stop_requested(self) -> bool:
        return self.found


def run_worker_client(host: str, port: int, *, salt: int = 0,
                      connect_timeout: float = 10.0) -> None:
    """Join a coordinator's pool as one worker (``repro serve-worker``).

    Blocks until the coordinator finishes the solve (or hangs up); the
    fault plan, if any, is read from ``REPRO_FAULT`` at import time like
    every other entry point, so injected chaos reaches remote workers.
    """
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    stream = MessageStream(sock)
    try:
        _worker_session(stream, salt)
    finally:
        stream.close()


def _worker_session(stream: MessageStream, salt: int) -> None:
    stream.send(("hello", os.getpid()))
    msg = stream.recv(timeout=30.0)
    if msg[0] != "plane":
        raise ProtocolError(f"expected plane offer, got {msg[0]!r}")
    _, plane_name, n, nidx = msg
    plane: Optional[GraphPlane] = None
    graph: Optional[CSRGraph] = None
    if plane_name:
        try:
            plane = GraphPlane.attach(plane_name)
            graph = plane.graph()
        except Exception:
            plane = None
    if plane is not None:
        stream.send(("attached",))
        root_deg = plane.root_deg
    else:
        stream.send(("need_graph",))
        msg = stream.recv(timeout=30.0)
        if msg[0] != "graph":
            raise ProtocolError(f"expected graph, got {msg[0]!r}")
        indptr = np.frombuffer(msg[1], dtype=np.int64).copy()
        indices = np.frombuffer(msg[2], dtype=np.int32).copy()
        graph = CSRGraph(indptr, indices, validate=False)
        root_deg = np.asarray(graph.degrees, dtype=np.int32)
    msg = stream.recv(timeout=30.0)
    if msg[0] != "init":
        raise ProtocolError(f"expected init, got {msg[0]!r}")
    params = msg[1]
    faults.reseed(params.get("salt", salt))
    # Telemetry arming travels in the init frame, so remote cold
    # interpreters join the coordinator's trace.  The epoch is recovered
    # from the coordinator's elapsed-seconds stamp (`now_rel`) — exact on
    # the same host (CLOCK_MONOTONIC is system-wide), one network hop of
    # skew on a real remote.  Local fork workers drop any inherited
    # tracer here too, so every lane is armed the same one way.
    tele = params.get("telemetry")
    if tele and tele.get("trace_id"):
        epoch = time.monotonic() - float(tele.get("now_rel", 0.0))
        obs_trace.arm(str(tele["trace_id"]), epoch)
    else:
        obs_trace.disarm()
    if tele and tele.get("metrics"):
        obs_metrics.arm()
        obs_metrics.REGISTRY.reset()
    else:
        obs_metrics.disarm()
    _worker_loop(stream, graph, root_deg, params)


def _worker_loop(stream: MessageStream, graph: CSRGraph,
                 root_deg: np.ndarray, params: Dict[str, object]) -> None:
    mode = params["mode"]
    formulation: Formulation
    if mode == "mvc":
        formulation = _RemoteMVC(int(params["initial_best"]))
    else:
        formulation = _RemotePVC(int(params["k"]))
    enc, dec = _codec_fns(str(params["codec"]), root_deg)
    threshold = int(params["threshold"])
    lease_batch = int(params["lease_batch"])
    deadline_s = params.get("deadline_s")
    deadline_at = None if deadline_s is None else time.monotonic() + float(deadline_s)
    plan = faults.current_plan()
    kill_active = plan is not None and "worker_kill" in plan.sites()
    delay_active = plan is not None and "queue_delay" in plan.sites()
    fault_guard = faults.step_guard_active()
    ws = Workspace.for_graph(graph)
    step = NodeStep(graph, formulation, ws, bound=str(params["bound"]),
                    kernels=str(params["kernels"])).run
    local = LifoFrontier()
    comms = CommStats()
    donation_buf: List[object] = []
    depth_hint = 0  # coordinator queue depth, in batches (advisory)
    current: Optional[VCState] = None
    unflushed_nodes = 0
    total_nodes = 0
    recovered = 0
    has_lease = False
    done = False

    def handle(msg) -> None:
        nonlocal depth_hint, done
        kind = msg[0]
        if kind == "best":
            depth_hint = msg[2]
            if mode == "mvc" and msg[1] < formulation.best_size:
                formulation.best_size = msg[1]
        elif kind == "done":
            done = True

    def flush_nodes() -> None:
        nonlocal unflushed_nodes
        if unflushed_nodes:
            stream.send(("nodes", unflushed_nodes))
            comms.messages += 1
            unflushed_nodes = 0

    def flush_donations() -> None:
        nonlocal depth_hint
        if donation_buf:
            payloads = list(donation_buf)
            donation_buf.clear()
            if delay_active:
                faults.fire("queue_delay")
            with obs_trace.span("frame"):
                stream.send(("donate", payloads))
            comms.messages += 1
            comms.donations += len(payloads)
            comms.bytes_sent += sum(wire_nbytes(p) for p in payloads)
            depth_hint += 1

    def finish_lease() -> None:
        nonlocal has_lease
        if has_lease:
            flush_donations()
            flush_nodes()
            stream.send(("lease_done",))
            comms.messages += 1
            has_lease = False

    def get_work() -> Optional[VCState]:
        nonlocal has_lease, depth_hint
        finish_lease()
        stream.send(("ready",))
        comms.messages += 1
        idle_from = time.monotonic()
        wait = 0.001
        with obs_trace.span("idle"):
            while True:
                if done or formulation.stop_requested():
                    return None
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    return None
                if delay_active:
                    faults.fire("queue_delay")
                for msg in stream.poll(wait):
                    if msg[0] == "work":
                        comms.idle_s += time.monotonic() - idle_from
                        batch, depth_hint = msg[1], msg[2]
                        has_lease = True
                        comms.leases += 1
                        comms.subtrees += len(batch)
                        comms.bytes_received += sum(wire_nbytes(p) for p in batch)
                        with obs_trace.span("lease"):
                            states = [dec(p) for p in batch]
                        for extra in states[1:]:
                            local.push(extra)
                        return states[0]
                    handle(msg)
                wait = min(wait * 2.0, 0.05)

    while True:
        if done or formulation.stop_requested():
            break
        if deadline_at is not None and time.monotonic() >= deadline_at:
            break
        if current is None:
            current = local.pop()
            if current is None:
                current = get_work()
                if current is None:
                    break
        if kill_active:
            faults.fire("worker_kill")  # may os._exit right here
        for msg in stream.poll(0.0):
            handle(msg)
        total_nodes += 1
        unflushed_nodes += 1
        if unflushed_nodes >= _NODES_FLUSH:
            flush_nodes()
        if fault_guard:
            backup = current.copy()
            try:
                outcome = step(current)
            except faults.FaultInjected:
                recovered += 1
                local.push(backup)
                current = None
                continue
        else:
            outcome = step(current)
        if outcome is PRUNED:
            current = None
            continue
        if outcome is LEAF:
            formulation.accept(current)
            if formulation.improved:
                formulation.improved = False
                best = formulation.local_best
                payload = enc(best)
                stream.send(("best", best.cover_size, payload))
                comms.messages += 1
                comms.bytes_sent += wire_nbytes(payload)
            ws.release_deg(current.deg)
            current = None
            continue
        deferred = outcome.deferred
        current = outcome.continued
        if depth_hint * lease_batch + len(donation_buf) < threshold:
            donation_buf.append(enc(deferred))
            if len(donation_buf) >= lease_batch:
                flush_donations()
        else:
            local.push(deferred)

    # Wind-down: everything still in hand goes home with the result.
    leftovers: List[object] = list(donation_buf)
    donation_buf.clear()
    if current is not None:
        leftovers.append(enc(current))
    leftovers.extend(enc(state) for state in local.drain())
    flush_nodes()
    if has_lease:
        stream.send(("lease_done",))
        comms.messages += 1
    comms.messages += 1
    comms.bytes_sent += sum(wire_nbytes(p) for p in leftovers)
    # Exact socket byte counts from the transport, alongside the
    # wire_nbytes() estimates shared with the queue engines.  wire_received
    # includes the inline graph frame on the need_graph path, which is the
    # cost the shared-memory plane exists to avoid; wire_sent excludes only
    # the final result frame (its size would have to contain itself).
    obs_breakdown.add_wall("idle", comms.idle_s)
    comms_dict = comms.as_dict()
    comms_dict["wire_sent"] = stream.bytes_sent
    comms_dict["wire_received"] = stream.decoder.bytes_fed
    # Telemetry rides the existing result frame: wall-time attribution as
    # extra ``obs_<kind>_s`` comms keys (CommStats.totals sums every key it
    # sees) and the drained span rows appended as a fifth element that old
    # coordinators simply never index.
    comms_dict.update(obs_breakdown.wall_obs_keys())
    tracer = obs_trace.get()
    spans = tracer.drain() if tracer is not None else []
    stream.send(("result", total_nodes, leftovers, recovered, comms_dict, spans))


def _local_worker_main(host: str, port: int, salt: int) -> None:
    """Entry point of the engine's own (forked) socket workers."""
    try:
        run_worker_client(host, port, salt=salt)
    except (TransportClosed, ConnectionError, EOFError, TimeoutError):
        pass  # coordinator gone: nothing useful left to do


# --------------------------------------------------------------------- #
# coordinator side
# --------------------------------------------------------------------- #
class _Peer:
    """One connected worker, local or remote — the protocol can't tell."""

    __slots__ = ("stream", "wid", "stage", "lease", "waiting", "finished",
                 "result", "nodes_flushed")

    def __init__(self, stream: MessageStream, wid: int):
        self.stream = stream
        self.wid = wid
        self.stage = "hello"  # hello -> plane -> live
        self.lease: Optional[List[object]] = None
        self.waiting = False  # sent ready and has not been fed yet
        self.finished = False
        self.result: Optional[Tuple[int, List, int, Dict[str, float]]] = None
        self.nodes_flushed = 0


class _DistRun:
    """Everything the coordinator learned from one distributed run."""

    __slots__ = ("best_size", "best_cover", "timed_out", "deadline_tripped",
                 "nodes", "wall", "per_worker", "pending", "recovered", "lost",
                 "comms", "found", "supervision")

    def __init__(self) -> None:
        self.best_size: Optional[int] = None
        self.best_cover: Optional[np.ndarray] = None
        self.timed_out = False
        self.deadline_tripped = False
        self.nodes = 0
        self.wall = 0.0
        self.per_worker: List[int] = []
        self.pending: List[VCState] = []
        self.recovered = 0
        self.lost = 0
        self.comms: Optional[Dict[str, object]] = None
        self.found = False
        self.supervision: Optional[Dict[str, float]] = None


def _spawn_host_process(port: int) -> "subprocess.Popen":
    """One simulated extra host: a cold ``repro serve-worker`` interpreter."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    # Local fork workers inherit a faults.injected() plan via the fork;
    # a cold interpreter only reads REPRO_FAULT, so export the live plan
    # there too — otherwise "kill a *remote* worker" tests can't arm it.
    plan = faults.current_plan()
    if plan is not None:
        env["REPRO_FAULT"] = plan.spec()
        env["REPRO_FAULT_SEED"] = str(plan.seed)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-worker",
         "--connect", f"127.0.0.1:{port}"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _run_distributed(
    graph: CSRGraph,
    mode: str,
    k: int,
    *,
    n_workers: int,
    hosts: int,
    threshold: int,
    node_budget: Optional[int],
    initial_best: int,
    initial_cover: Optional[np.ndarray] = None,
    bound: str = "greedy",
    kernels: Optional[str] = None,
    deadline: Optional[float] = None,
    roots: Optional[Sequence[VCState]] = None,
    lease_batch: int = LEASE_BATCH,
    codec: str = "v2",
    max_respawns: int = MAX_RESPAWNS,
    listen_host: str = "127.0.0.1",
) -> _DistRun:
    import multiprocessing as mp
    from collections import deque

    if n_workers < 0 or hosts < 0 or n_workers + hosts < 1:
        raise ValueError("need at least one worker (n_workers + hosts >= 1)")
    if lease_batch < 1:
        raise ValueError("lease_batch must be >= 1")
    backend = resolve_kernels(kernels)
    kernels_name = backend.name
    graph.prewarm(adjacency=backend.uses_adjacency(graph))
    root_deg = np.asarray(graph.degrees, dtype=np.int32)
    enc, _ = _codec_fns(codec, root_deg)
    plane = publish_plane(graph) if codec == "v2" else None

    run = _DistRun()
    run.best_size = initial_best if mode == "mvc" else None
    run.best_cover = initial_cover

    queue: "deque[List[object]]" = deque()
    root_payloads = [enc(state)
                     for state in ([fresh_state(graph)] if roots is None else roots)]
    for i in range(0, len(root_payloads), lease_batch):
        queue.append(root_payloads[i:i + lease_batch])

    init_params = {
        "mode": mode, "k": k, "bound": bound, "kernels": kernels_name,
        "threshold": threshold, "codec": codec, "lease_batch": lease_batch,
        "initial_best": initial_best,
        "deadline_s": deadline,
    }

    lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    lsock.bind((listen_host, 0))
    lsock.listen(n_workers + hosts + 4)
    lsock.setblocking(False)
    port = lsock.getsockname()[1]

    ctx = mp.get_context("fork")
    salt_seq = [0]

    def spawn_local() -> "mp.Process":
        salt_seq[0] += 1
        p = ctx.Process(target=_local_worker_main,
                        args=(listen_host, port, salt_seq[0]), daemon=True)
        p.start()
        return p

    procs: List["mp.Process"] = [spawn_local() for _ in range(n_workers)]
    host_procs: List["subprocess.Popen"] = [
        _spawn_host_process(port) for _ in range(hosts)]

    peers: Dict[int, _Peer] = {}
    wid_seq = [0]
    stop_reason = [_STOP_NONE]
    done_sent = [False]
    respawns_used = [0]
    retired_slots = [0]   # peers lost after the respawn budget ran dry
    inline_drains = [0]   # wind-down paths that fell back to _drain_inline
    nodes_total = [0]
    # An armed coordinator ships its trace identity in the init frame so a
    # cold remote interpreter can place its spans on the same timeline.
    parent_tracer = obs_trace.get()
    started = time.monotonic()
    deadline_at = None if deadline is None else started + deadline
    start = time.perf_counter()

    def live_peers() -> List[_Peer]:
        return [p for p in peers.values() if p.stage == "live" and not p.finished]

    def broadcast(msg: Tuple) -> None:
        for peer in live_peers():
            try:
                peer.stream.send(msg)
            except TransportClosed:
                pass  # death is handled by the read path

    def request_done(reason: int) -> None:
        if reason != _STOP_NONE and stop_reason[0] == _STOP_NONE:
            stop_reason[0] = reason
        if not done_sent[0]:
            done_sent[0] = True
            broadcast(("done",))

    def offer_best(size: int, payload) -> None:
        if run.best_size is None or size < run.best_size:
            run.best_size = size
            run.best_cover = decode_wire(payload, root_deg).cover()
            if mode == "mvc":
                broadcast(("best", size, len(queue)))
            else:
                run.found = True
                request_done(_STOP_NONE)

    lost_nodes = [0]  # flushed deltas of peers that died without a result

    def drop_peer(peer: _Peer, *, died: bool) -> None:
        peer.stream.close()
        peers.pop(peer.wid, None)
        if peer.lease is not None:
            # The lease roots dominate everything the dead peer had
            # expanded locally: re-enqueueing them loses nothing.
            queue.append(peer.lease)
            peer.lease = None
        if peer.finished:
            return
        if died:
            run.lost += 1
            lost_nodes[0] += peer.nodes_flushed
        if died and not done_sent[0]:
            if respawns_used[0] < max_respawns * max(1, n_workers):
                respawns_used[0] += 1
                procs.append(spawn_local())
            else:
                retired_slots[0] += 1
                warnings.warn(
                    f"distributed: peer {peer.wid} died and the respawn "
                    f"budget is spent; degrading to {len(peers)} workers",
                    RuntimeWarning,
                )

    def handle_message(peer: _Peer, msg) -> None:
        kind = msg[0]
        if peer.stage == "hello":
            if kind != "hello":
                raise ProtocolError(f"expected hello, got {kind!r}")
            peer.stream.send(("plane",
                              None if plane is None else plane.name,
                              graph.n, int(graph.indices.size)))
            peer.stage = "plane"
            return
        if peer.stage == "plane":
            if kind == "need_graph":
                peer.stream.send(("graph", graph.indptr.tobytes(),
                                  graph.indices.tobytes()))
            elif kind != "attached":
                raise ProtocolError(f"expected attached/need_graph, got {kind!r}")
            salt_seq[0] += 1
            params = dict(init_params)
            params["salt"] = salt_seq[0]
            if deadline_at is not None:
                params["deadline_s"] = max(0.0, deadline_at - time.monotonic())
            if parent_tracer is not None or obs_metrics.armed():
                params["telemetry"] = {
                    "trace_id": parent_tracer.trace_id if parent_tracer else "",
                    "now_rel": parent_tracer.now() if parent_tracer else 0.0,
                    "metrics": obs_metrics.armed(),
                }
            peer.stream.send(("init", params))
            peer.stage = "live"
            if done_sent[0]:
                peer.stream.send(("done",))
            return
        # live protocol
        if kind == "ready":
            peer.waiting = True
        elif kind == "lease_done":
            peer.lease = None
        elif kind == "donate":
            queue.append(list(msg[1]))
        elif kind == "best":
            offer_best(msg[1], msg[2])
        elif kind == "nodes":
            peer.nodes_flushed += msg[1]
            nodes_total[0] += msg[1]
            if node_budget is not None and nodes_total[0] >= node_budget:
                request_done(_STOP_BUDGET)
        elif kind == "result":
            peer.result = (msg[1], msg[2], msg[3], msg[4])
            results[peer.wid] = peer.result
            if len(msg) > 5 and msg[5] and parent_tracer is not None:
                parent_tracer.absorb(msg[5])
            peer.finished = True
            peer.waiting = False
            if peer.lease is not None:
                # fed in the same instant the worker wound down on its
                # own (deadline race): put the untouched batch back
                queue.append(peer.lease)
                peer.lease = None

    def pump_all(timeout: float) -> bool:
        """Accept + read every connection; True if anything happened."""
        import select as select_mod

        progressed = False
        socks = [lsock] + [p.stream.sock for p in peers.values()]
        try:
            readable, _, _ = select_mod.select(socks, [], [], timeout)
        except (OSError, ValueError):
            readable = []
        readable_set = set(readable)
        if lsock in readable_set:
            while True:
                try:
                    conn, _ = lsock.accept()
                except (BlockingIOError, OSError):
                    break
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                wid_seq[0] += 1
                peers[wid_seq[0]] = _Peer(MessageStream(conn), wid_seq[0])
                progressed = True
        for peer in list(peers.values()):
            if peer.stream.sock not in readable_set:
                continue
            try:
                for msg in peer.stream.poll(0.0):
                    handle_message(peer, msg)
                    progressed = True
            except (TransportClosed, ProtocolError, EOFError):
                drop_peer(peer, died=True)
                progressed = True
        return progressed

    def feed_ready_peers() -> None:
        if done_sent[0]:
            return
        for peer in live_peers():
            if not queue:
                break
            if peer.waiting and peer.lease is None:
                batch = queue.popleft()
                # Charged at send time: a peer that dies before its
                # lease_done gets this batch re-enqueued by drop_peer.
                peer.lease = batch
                peer.waiting = False
                try:
                    peer.stream.send(("work", batch, len(queue)))
                except TransportClosed:
                    drop_peer(peer, died=True)

    results: Dict[int, Tuple[int, List, int, Dict[str, float]]] = {}
    try:
        # ------------------------- supervisor loop ------------------------ #
        while True:
            progressed = pump_all(0.01)
            feed_ready_peers()

            if deadline_at is not None and time.monotonic() >= deadline_at:
                request_done(_STOP_DEADLINE)

            # Ledger termination test: nothing queued, nothing leased — no
            # node anywhere can create more work, so the search is done.
            if (not done_sent[0] and not queue
                    and all(p.lease is None for p in peers.values())
                    and any(p.stage == "live" for p in peers.values())):
                request_done(_STOP_NONE)

            # reap exited local processes (their conn death re-enqueues)
            for p in list(procs):
                if not p.is_alive():
                    p.join()
                    procs.remove(p)

            alive_conns = [p for p in peers.values() if not p.finished]
            if done_sent[0] and not alive_conns:
                break
            if done_sent[0]:
                continue

            if not peers and not procs and not any(
                    h.poll() is None for h in host_procs):
                # every process is gone and nobody is connected
                break
            if not peers and time.monotonic() - started > _CONNECT_GRACE_S:
                inline_drains[0] += 1
                warnings.warn("distributed: no worker ever connected; "
                              "draining inline", RuntimeWarning)
                break
            if not progressed:
                time.sleep(0.002)

        # ------------------------- wind-down ----------------------------- #
        request_done(_STOP_NONE)
        windup_until = time.monotonic() + _WINDDOWN_S
        while (any(not p.finished for p in peers.values())
               and time.monotonic() < windup_until):
            pump_all(0.02)
        for peer in list(peers.values()):
            if peer.result is not None:
                results[peer.wid] = peer.result
            drop_peer(peer, died=False)
        run.wall = time.perf_counter() - start

        run.timed_out = stop_reason[0] != _STOP_NONE and not run.found
        run.deadline_tripped = stop_reason[0] == _STOP_DEADLINE
        # Result frames carry each finisher's exact total (including the
        # unflushed tail); dead peers contribute what they flushed.
        run.nodes = sum(r[0] for r in results.values()) + lost_nodes[0]
        run.per_worker = [r[0] for _, r in sorted(results.items())]
        run.recovered = sum(r[2] for r in results.values())
        per_worker_comms = {wid: r[3] for wid, r in results.items()}
        run.comms = {
            "per_worker": per_worker_comms,
            "totals": CommStats.totals(per_worker_comms),
        }
        remaining: List[object] = []
        for batch in queue:
            remaining.extend(batch)
        if run.timed_out:
            for _, leftovers, _, _ in results.values():
                remaining.extend(leftovers)
            run.pending = [decode_wire(w, root_deg) for w in remaining]
        elif remaining and not run.found:
            inline_drains[0] += 1
            warnings.warn(
                f"distributed: draining {len(remaining)} sub-trees inline",
                RuntimeWarning,
            )
            size, cover = _drain_inline(
                graph, mode, k, [decode_wire(w, root_deg) for w in remaining],
                run.best_size if mode == "mvc" and run.best_size is not None
                else (initial_best if mode == "mvc" else k),
                run.best_cover, bound, kernels_name,
            )
            if size is not None and (run.best_size is None or size <= run.best_size):
                run.best_size, run.best_cover = size, cover
                if mode == "pvc":
                    run.found = True
        run.supervision = {
            "recovered": float(run.recovered),
            "workers_lost": float(run.lost),
            "respawns": float(respawns_used[0]),
            "retired_slots": float(retired_slots[0]),
            "inline_drains": float(inline_drains[0]),
            "lost_nodes": float(lost_nodes[0]),
        }
    finally:
        for peer in list(peers.values()):
            peer.stream.close()
        try:
            lsock.close()
        except OSError:  # pragma: no cover
            pass
        for p in procs:
            p.join(timeout=1.0)
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=1.0)
        for h in host_procs:
            if h.poll() is None:
                try:
                    h.terminate()
                    h.wait(timeout=2.0)
                except Exception:  # pragma: no cover - defensive
                    h.kill()
        if plane is not None:
            plane.close()
    return run


def solve_mvc_distributed(
    graph: CSRGraph,
    *,
    n_workers: int = 2,
    hosts: int = 0,
    threshold: int = 32,
    node_budget: Optional[int] = None,
    bound: str = "greedy",
    kernels: Optional[str] = None,
    deadline: Optional[float] = None,
    roots: Optional[Sequence[VCState]] = None,
    initial_best: Optional[Tuple[int, np.ndarray]] = None,
    lease_batch: int = LEASE_BATCH,
    codec: str = "v2",
    **_: object,
) -> CpuParallelResult:
    """Minimum vertex cover with a coordinator + socket-worker pool."""
    greedy = greedy_cover(graph, kernels=kernels)
    best0, cover0 = greedy.size, greedy.cover
    if initial_best is not None and initial_best[0] < best0:
        best0 = int(initial_best[0])
        cover0 = np.asarray(initial_best[1], dtype=np.int32)
    if graph.m == 0:
        return CpuParallelResult("distributed", "mvc", 0, np.empty(0, dtype=np.int32),
                                 None, False, 0, n_workers + hosts, 0.0, greedy.size)
    run = _run_distributed(
        graph, "mvc", 0, n_workers=n_workers, hosts=hosts, threshold=threshold,
        node_budget=node_budget, initial_best=best0, initial_cover=cover0,
        bound=bound, kernels=kernels, deadline=deadline, roots=roots,
        lease_batch=lease_batch, codec=codec,
    )
    return CpuParallelResult(
        engine="distributed",
        formulation="mvc",
        optimum=run.best_size,
        cover=run.best_cover,
        feasible=None,
        timed_out=run.timed_out,
        nodes_visited=run.nodes,
        n_workers=n_workers + hosts,
        wall_seconds=run.wall,
        greedy_size=greedy.size,
        per_worker_nodes=run.per_worker,
        pending_states=run.pending,
        deadline_tripped=run.deadline_tripped,
        faults_recovered=run.recovered,
        workers_lost=run.lost,
        comms=run.comms,
        supervision=run.supervision,
    )


def solve_pvc_distributed(
    graph: CSRGraph,
    k: int,
    *,
    n_workers: int = 2,
    hosts: int = 0,
    threshold: int = 32,
    node_budget: Optional[int] = None,
    bound: str = "greedy",
    kernels: Optional[str] = None,
    deadline: Optional[float] = None,
    roots: Optional[Sequence[VCState]] = None,
    lease_batch: int = LEASE_BATCH,
    codec: str = "v2",
    **_: object,
) -> CpuParallelResult:
    """Parameterized vertex cover with a coordinator + socket-worker pool."""
    if k < 0:
        raise ValueError("k must be non-negative")
    greedy = greedy_cover(graph, kernels=kernels)
    if graph.m == 0:
        return CpuParallelResult("distributed", "pvc", 0, np.empty(0, dtype=np.int32),
                                 True, False, 0, n_workers + hosts, 0.0, greedy.size)
    run = _run_distributed(
        graph, "pvc", k, n_workers=n_workers, hosts=hosts, threshold=threshold,
        node_budget=node_budget, initial_best=graph.n + 1, initial_cover=None,
        bound=bound, kernels=kernels, deadline=deadline, roots=roots,
        lease_batch=lease_batch, codec=codec,
    )
    feasible: Optional[bool]
    if run.found and run.best_cover is not None:
        feasible = True
    elif run.timed_out:
        feasible = None
    else:
        feasible = False
    return CpuParallelResult(
        engine="distributed",
        formulation="pvc",
        optimum=run.best_size if feasible else None,
        cover=run.best_cover if feasible else None,
        feasible=feasible,
        timed_out=run.timed_out,
        nodes_visited=run.nodes,
        n_workers=n_workers + hosts,
        wall_seconds=run.wall,
        greedy_size=greedy.size,
        per_worker_nodes=run.per_worker,
        pending_states=run.pending,
        deadline_tripped=run.deadline_tripped,
        faults_recovered=run.recovered,
        workers_lost=run.lost,
        comms=run.comms,
        supervision=run.supervision,
    )
