"""Length-prefixed socket transport for the distributed engine.

One frame = a 4-byte little-endian unsigned length followed by a pickled
event tuple — the same ``lease``/``lease_done``/``donate``/``best``/
``result`` vocabulary the in-process engines speak over
``multiprocessing`` queues, so the supervision state machine is
transport-agnostic.  The framing layer is deliberately split in two:

* :class:`FrameDecoder` is a pure incremental parser (bytes in, messages
  out) with no socket anywhere near it, so torn frames and partial reads
  are testable without networking;
* :class:`MessageStream` owns one connected socket and layers blocking
  ``send``/``recv`` plus a non-blocking ``poll`` on top of the decoder.

A peer that disappears mid-frame surfaces as :class:`TransportClosed`
(a ``ConnectionError``), which the coordinator treats exactly like a
dead local worker: the lease is re-enqueued.  Malformed length prefixes
raise :class:`ProtocolError` rather than silently desynchronizing.
"""

from __future__ import annotations

import pickle
import select
import socket
import struct
import time
from typing import List, Optional, Tuple

__all__ = [
    "FrameDecoder",
    "MessageStream",
    "ProtocolError",
    "TransportClosed",
    "MAX_FRAME_BYTES",
    "encode_frame",
]

#: Hard cap on one frame's payload: even a dense v1 state on a graph with
#: tens of millions of vertices fits well under this.
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct("<I")
_RECV_CHUNK = 1 << 16


class TransportClosed(ConnectionError):
    """The peer hung up — possibly mid-frame."""


class ProtocolError(ValueError):
    """The byte stream is not speaking this framing."""


def encode_frame(message: object) -> bytes:
    """Serialize one message as a length-prefixed pickle frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds cap")
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser: ``feed`` bytes, ``next`` messages.

    ``next`` returns ``None`` while the buffered bytes end mid-frame
    (torn frame / partial read) — feeding the remainder later resumes
    exactly where the stream left off.  Protocol messages are tuples,
    never ``None``, so the sentinel is unambiguous.
    """

    __slots__ = ("_buf", "bytes_fed", "frames_out")

    def __init__(self) -> None:
        self._buf = bytearray()
        self.bytes_fed = 0
        self.frames_out = 0

    def feed(self, data: bytes) -> None:
        self.bytes_fed += len(data)
        self._buf += data

    @property
    def pending(self) -> int:
        """Buffered bytes of the (incomplete) next frame."""
        return len(self._buf)

    def next(self) -> Optional[object]:
        if len(self._buf) < _LEN.size:
            return None
        (length,) = _LEN.unpack_from(self._buf, 0)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length {length} exceeds cap")
        end = _LEN.size + length
        if len(self._buf) < end:
            return None
        payload = bytes(self._buf[_LEN.size:end])
        del self._buf[:end]
        self.frames_out += 1
        return pickle.loads(payload)

    def drain(self) -> List[object]:
        """Every complete message currently buffered."""
        out: List[object] = []
        while True:
            msg = self.next()
            if msg is None:
                return out
            out.append(msg)


class MessageStream:
    """One connected socket speaking length-prefixed event tuples.

    ``send`` is blocking (frames are small; the OS buffers them),
    ``poll`` never blocks longer than its timeout, and ``recv`` blocks
    until a whole message or its deadline.  Byte/message counters feed
    the engines' comms observability.
    """

    __slots__ = ("sock", "decoder", "bytes_sent", "messages_sent")

    def __init__(self, sock: socket.socket):
        sock.setblocking(True)
        self.sock = sock
        self.decoder = FrameDecoder()
        self.bytes_sent = 0
        self.messages_sent = 0

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, message: object) -> int:
        frame = encode_frame(message)
        try:
            self.sock.sendall(frame)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise TransportClosed(f"peer gone during send: {exc}") from exc
        self.bytes_sent += len(frame)
        self.messages_sent += 1
        return len(frame)

    def poll(self, timeout: float = 0.0) -> List[object]:
        """Complete messages available within ``timeout`` (may be none)."""
        msgs = self.decoder.drain()
        if msgs:
            return msgs
        try:
            readable, _, _ = select.select([self.sock], [], [], timeout)
        except (OSError, ValueError) as exc:  # closed fd
            raise TransportClosed(f"socket gone: {exc}") from exc
        if not readable:
            return []
        try:
            data = self.sock.recv(_RECV_CHUNK)
        except (ConnectionResetError, OSError) as exc:
            raise TransportClosed(f"peer reset: {exc}") from exc
        if not data:
            mid = self.decoder.pending
            raise TransportClosed(
                f"peer closed{f' mid-frame ({mid} bytes buffered)' if mid else ''}")
        self.decoder.feed(data)
        return self.decoder.drain()

    def recv(self, timeout: Optional[float] = None) -> object:
        """Block for exactly one message (raises ``TimeoutError``)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = 0.05 if deadline is None else min(0.05, deadline - time.monotonic())
            if deadline is not None and wait < 0:
                raise TimeoutError("no message before deadline")
            msgs = self.poll(max(wait, 0.0))
            if msgs:
                if len(msgs) > 1:
                    self._pushback(msgs[1:])
                return msgs[0]

    def _pushback(self, msgs: List[object]) -> None:
        """Re-buffer decoded messages (recv returns one at a time)."""
        frames = b"".join(encode_frame(m) for m in msgs)
        rest = bytes(self.decoder._buf)
        self.decoder._buf = bytearray(frames + rest)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
