"""Socket transport and the distributed coordinator/worker engine."""
