"""repro — reproduction of "Parallel Vertex Cover Algorithms on GPUs" (IPDPS 2022).

Public API highlights
---------------------

* :class:`repro.graph.CSRGraph` — immutable CSR graph.
* :func:`repro.core.solve_mvc` / :func:`repro.core.solve_pvc` — one facade
  over the sequential, simulated-GPU (StackOnly / Hybrid / GlobalOnly) and
  real CPU-parallel engines.
* :mod:`repro.sim` — the discrete-event virtual GPU (device specs, launch
  configuration, cost model, broker worklist).
* :mod:`repro.analysis` — the harness regenerating every table and figure
  of the paper's evaluation.
"""

from .core import solve_mvc, solve_pvc
from .graph import CSRGraph

__version__ = "1.0.0"

__all__ = ["CSRGraph", "solve_mvc", "solve_pvc", "__version__"]
