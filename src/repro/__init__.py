"""repro — reproduction of "Parallel Vertex Cover Algorithms on GPUs" (IPDPS 2022).

Public API highlights
---------------------

* :class:`repro.graph.CSRGraph` — immutable CSR graph.
* :func:`repro.core.solve_mvc` / :func:`repro.core.solve_pvc` — one facade
  over the sequential, simulated-GPU (StackOnly / Hybrid / GlobalOnly) and
  real CPU-parallel engines.
* :mod:`repro.sim` — the discrete-event virtual GPU (device specs, launch
  configuration, cost model, broker worklist).
* :mod:`repro.analysis` — the harness regenerating every table and figure
  of the paper's evaluation.
"""

import os as _os

from .core import solve_mvc, solve_pvc
from .graph import CSRGraph

__version__ = "1.0.0"

__all__ = ["CSRGraph", "solve_mvc", "solve_pvc", "__version__"]

# Opt-in: REPRO_CALIBRATION=1 (or =<path>) installs this machine's measured
# kernel-dispatch cutoffs from benchmarks/CALIBRATION.json at import time.
# The emptiness check alone gates the analysis import so the common (unset)
# path never pays it; all value interpretation — on/off spellings, paths,
# the loud refusal of --quick artifacts — lives in one place,
# repro.analysis.microbench.maybe_autoload_calibration.
if _os.environ.get("REPRO_CALIBRATION", "").strip():
    from .analysis.microbench import maybe_autoload_calibration as _autoload

    _autoload()
