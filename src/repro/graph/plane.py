"""Zero-copy shared-memory graph plane.

The paper keeps one immutable CSR copy of the input graph that every
thread block reads (Section IV-B).  The process engines need the same
thing across OS processes: :class:`GraphPlane` publishes the CSR arrays
(``indptr``/``indices``) plus the root degree vector once into a POSIX
shared-memory segment, and workers *attach* by name — mapping the same
physical pages instead of re-pickling and re-validating the graph per
spawn.  The root degree vector doubles as the delta base for the v2 wire
codec (:func:`repro.graph.degree_array.decode_wire`): every worker that
attaches the plane can decode sparse ``(idx, val)`` frames against it.

Lifecycle
---------
Exactly one process — the supervisor — ``publish()``-es and later
``close(unlink=True)``-s the segment; workers ``attach()`` and only ever
``close()`` (never unlink).  On Python < 3.13 attaching registers the
segment with the per-process ``resource_tracker``, which would unlink it
a second time at interpreter shutdown (bpo-38119); ``attach`` therefore
immediately unregisters the name again.  Platforms without
``multiprocessing.shared_memory`` (or with ``/dev/shm`` unavailable)
degrade gracefully: ``publish`` returns ``None`` and callers fall back
to shipping the CSR arrays inline.
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphPlane", "publish_plane"]

#: Segment header: magic, n, len(indices), reserved — all little-endian i64.
_HEADER = struct.Struct("<4q")
_MAGIC = 0x31504356  # "VCP1"


def _attach_untracked(name: str):
    """Open an existing segment without resource_tracker registration.

    On Python < 3.13 *attaching* a segment registers it with the
    per-process resource tracker exactly like creating one, so the
    tracker unlinks it a second time at shutdown and complains about the
    leak (bpo-38119; ``track=False`` only lands in 3.13).  Registration
    is a process-local function call, so swapping it out for the duration
    of the attach suppresses the message at the source.
    """
    from multiprocessing import resource_tracker, shared_memory

    orig = resource_tracker.register

    def register(rname, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            orig(rname, rtype)

    resource_tracker.register = register
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig
    # Attach-side views (the zero-copy graph arrays) legitimately live
    # until process exit; a destructor-time close() would raise
    # BufferError at interpreter shutdown.  The OS reclaims the mapping
    # with the process, so the destructor can safely do nothing.
    shm.__class__ = _attached_cls()
    return shm


class GraphPlane:
    """One published (or attached) shared-memory CSR graph segment.

    Layout: 32-byte header, then ``indptr`` (``int64[n + 1]``),
    ``indices`` (``int32[len]``, padded to 8-byte alignment), then the
    root degree vector (``int32[n]``).  All views handed out are
    read-only and alias the mapped segment — dropping the plane's
    references (``close``) is required before the map can go away.
    """

    def __init__(self, shm, n: int, nidx: int, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.n = n
        self._nidx = nidx
        buf = shm.buf
        off = _HEADER.size
        self.indptr = np.frombuffer(buf, dtype=np.int64, count=n + 1, offset=off)
        off += (n + 1) * 8
        self.indices = np.frombuffer(buf, dtype=np.int32, count=nidx, offset=off)
        off += _pad8(nidx * 4)
        self.root_deg = np.frombuffer(buf, dtype=np.int32, count=n, offset=off)
        for arr in (self.indptr, self.indices, self.root_deg):
            arr.setflags(write=False)
        self._graph: Optional[CSRGraph] = None

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """OS-global segment name workers attach by."""
        return self._shm.name

    @classmethod
    def publish(cls, graph: CSRGraph) -> "GraphPlane":
        """Copy ``graph``'s CSR arrays into a fresh shared segment."""
        from multiprocessing import shared_memory

        n, nidx = graph.n, int(graph.indices.size)
        size = _HEADER.size + (n + 1) * 8 + _pad8(nidx * 4) + _pad8(n * 4)
        shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
        shm.buf[: _HEADER.size] = _HEADER.pack(_MAGIC, n, nidx, 0)
        plane = cls(shm, n, nidx, owner=True)
        with _writable(plane.indptr):
            plane.indptr[:] = graph.indptr
        with _writable(plane.indices):
            plane.indices[:] = graph.indices
        with _writable(plane.root_deg):
            plane.root_deg[:] = graph.degrees
        return plane

    @classmethod
    def attach(cls, name: str) -> "GraphPlane":
        """Map an already-published segment by name (zero-copy)."""
        shm = _attach_untracked(name)
        magic, n, nidx, _ = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise ValueError(f"shared segment {name!r} is not a graph plane")
        return cls(shm, int(n), int(nidx), owner=False)

    def graph(self) -> CSRGraph:
        """The CSR graph backed directly by the mapped segment."""
        if self._graph is None:
            self._graph = CSRGraph(self.indptr, self.indices, validate=False)
        return self._graph

    def close(self) -> None:
        """Drop the mapping; the owner also unlinks the segment."""
        if self._shm is None:
            return
        self._graph = None
        self.indptr = self.indices = self.root_deg = None  # release views
        shm, self._shm = self._shm, None
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        try:
            shm.close()
        except BufferError:  # pragma: no cover - leaked external view
            pass


def publish_plane(graph: CSRGraph) -> Optional[GraphPlane]:
    """Best-effort :meth:`GraphPlane.publish`; ``None`` when unavailable."""
    try:
        return GraphPlane.publish(graph)
    except Exception:  # pragma: no cover - no /dev/shm, exotic platforms
        return None


def _pad8(nbytes: int) -> int:
    return (nbytes + 7) & ~7


_ATTACHED_CLS = None


def _attached_cls():
    """Lazily built attach-side SharedMemory subclass (import stays light)."""
    global _ATTACHED_CLS
    if _ATTACHED_CLS is None:
        from multiprocessing import shared_memory

        class _AttachedSharedMemory(shared_memory.SharedMemory):
            """Attach-side handle: no destructor cleanup (see _attach_untracked)."""

            def __del__(self) -> None:  # pragma: no cover - shutdown path
                pass

        _ATTACHED_CLS = _AttachedSharedMemory
    return _ATTACHED_CLS


class _writable:
    """Temporarily lift the read-only flag while the owner fills a view."""

    def __init__(self, arr: np.ndarray):
        self.arr = arr

    def __enter__(self) -> np.ndarray:
        self.arr.setflags(write=True)
        return self.arr

    def __exit__(self, *exc) -> None:
        self.arr.setflags(write=False)
