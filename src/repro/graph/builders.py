"""Convenience constructors bridging external graph forms to :class:`CSRGraph`."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "from_edge_list",
    "from_adjacency",
    "from_networkx",
    "to_networkx",
    "from_adjacency_matrix",
    "to_adjacency_matrix",
    "relabel_dense",
]


def from_edge_list(n: int, edges: Iterable[Tuple[int, int]]) -> CSRGraph:
    """Build a graph on ``n`` vertices, silently deduplicating edges.

    Unlike :meth:`CSRGraph.from_edges` (which rejects duplicates as a data
    error), this helper canonicalises noisy inputs such as scraped edge
    lists: duplicates and mirrored orientations collapse, self loops are
    dropped.
    """
    seen = set()
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            continue
        seen.add((u, v) if u < v else (v, u))
    return CSRGraph.from_edges(n, sorted(seen), validate=False)


def from_adjacency(adj: Mapping[int, Sequence[int]] | Sequence[Sequence[int]]) -> CSRGraph:
    """Build from an adjacency mapping/list (``adj[v]`` = neighbours of ``v``)."""
    if isinstance(adj, Mapping):
        n = (max(adj) + 1) if adj else 0
        items = adj.items()
    else:
        n = len(adj)
        items = enumerate(adj)
    edges = []
    for u, nbrs in items:
        for v in nbrs:
            if int(u) < int(v):
                edges.append((int(u), int(v)))
            elif int(v) < int(u):
                edges.append((int(v), int(u)))
    return from_edge_list(n, edges)


def from_networkx(g) -> CSRGraph:
    """Convert a :mod:`networkx` graph, relabelling nodes to ``0..n-1``.

    Node order follows ``g.nodes()`` iteration order, so conversions are
    deterministic for a given graph object.
    """
    nodes = list(g.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in g.edges() if u != v]
    return from_edge_list(len(nodes), edges)


def to_networkx(graph: CSRGraph):
    """Convert to a :class:`networkx.Graph` (requires networkx)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edges())
    return g


def from_adjacency_matrix(mat: np.ndarray) -> CSRGraph:
    """Build from a dense 0/1 symmetric adjacency matrix."""
    mat = np.asarray(mat)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError("adjacency matrix must be square")
    if not np.array_equal(mat, mat.T):
        raise ValueError("adjacency matrix must be symmetric")
    if np.any(np.diag(mat) != 0):
        raise ValueError("adjacency matrix must have an empty diagonal")
    us, vs = np.nonzero(np.triu(mat, k=1))
    return CSRGraph.from_edges(mat.shape[0], zip(us.tolist(), vs.tolist()), validate=False)


def to_adjacency_matrix(graph: CSRGraph) -> np.ndarray:
    """Dense 0/1 adjacency matrix of the graph."""
    mat = np.zeros((graph.n, graph.n), dtype=np.int8)
    for u, v in graph.edges():
        mat[u, v] = 1
        mat[v, u] = 1
    return mat


def relabel_dense(n: int, edges: Iterable[Tuple[int, int]]) -> Tuple[CSRGraph, np.ndarray]:
    """Compact arbitrary integer vertex labels into a dense ``0..k-1`` range.

    Returns ``(graph, original_labels)`` where ``original_labels[i]`` is the
    input label of compacted vertex ``i``.  Useful for datasets whose vertex
    ids are sparse (KONECT-style exports).
    """
    edges = [(int(u), int(v)) for u, v in edges]
    labels = sorted({u for u, _ in edges} | {v for _, v in edges})
    index = {lab: i for i, lab in enumerate(labels)}
    remapped = [(index[u], index[v]) for u, v in edges]
    graph = from_edge_list(len(labels), remapped)
    return graph, np.asarray(labels, dtype=np.int64)
