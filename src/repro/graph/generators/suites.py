"""The evaluation suite: synthetic stand-ins for the paper's 18 graphs.

The paper's Table I spans two families:

* **high-degree** — complements of DIMACS ``p_hat`` instances plus three
  KONECT graphs with high average degree;
* **low-degree** — sparse KONECT/SNAP graphs and two PACE ``vc-exact``
  instances.

Those datasets are not redistributable here, so each graph is replaced by
a deterministic generator chosen to preserve the property the evaluation
discriminates on: the average degree (which governs search-tree imbalance)
and the instance difficulty ordering within each size class.  Sizes are
scaled down so a pure-Python traversal completes in seconds; the
``vc-exact`` stand-ins are deliberately generated *bipartite* so their
exact optimum is available in polynomial time (König) even though — like
the originals in the paper — their MVC search exceeds any reasonable
budget.

Three scales are provided: ``tiny`` (unit tests), ``small`` (the default
benchmark scale) and ``full`` (slower, closer to the paper's hardness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..csr import CSRGraph
from .phat import phat_complement
from .random_graphs import gnp, preferential_attachment, random_bipartite, watts_strogatz
from .structured import grid_graph

__all__ = ["SuiteInstance", "paper_suite", "suite_instance", "SCALES", "HIGH_DEGREE", "LOW_DEGREE"]

SCALES = ("tiny", "small", "full")
HIGH_DEGREE = "high-degree"
LOW_DEGREE = "low-degree"


@dataclass
class SuiteInstance:
    """One evaluation graph: a named, seeded, deterministic generator."""

    name: str
    category: str
    paper_graph: str
    builder: Callable[[], CSRGraph]
    bipartite: bool = False
    note: str = ""
    _cache: Optional[CSRGraph] = field(default=None, repr=False)

    def graph(self) -> CSRGraph:
        """Build (and memoise) the instance."""
        if self._cache is None:
            self._cache = self.builder()
        return self._cache


def _scaled(tiny: int, small: int, full: int, scale: str) -> int:
    return {"tiny": tiny, "small": small, "full": full}[scale]


def paper_suite(scale: str = "small") -> List[SuiteInstance]:
    """The full 18-instance evaluation suite at the requested scale."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}")
    suite: List[SuiteInstance] = []

    # ---------------- high-degree: p_hat complements ---------------- #
    phat_sizes = {
        "300": _scaled(30, 90, 130, scale),
        "500": _scaled(34, 100, 150, scale),
        "700": _scaled(38, 110, 170, scale),
        "1000": _scaled(42, 120, 190, scale),
    }
    for size_cls, tiers in [("300", (1, 2, 3)), ("500", (1, 2, 3)),
                            ("700", (1, 2)), ("1000", (1, 2))]:
        for tier in tiers:
            n = phat_sizes[size_cls]
            seed = int(size_cls) * 10 + tier
            suite.append(
                SuiteInstance(
                    name=f"p_hat_{size_cls}_{tier}",
                    category=HIGH_DEGREE,
                    paper_graph=f"p_hat{size_cls}-{tier} (DIMACS, complemented)",
                    builder=(lambda n=n, tier=tier, seed=seed: phat_complement(n, tier, seed=seed)),
                    note="complement of a p_hat-style graph; tier 3 originals "
                         "give the sparsest complements and hardest searches",
                )
            )

    # ------------- high-degree: KONECT-like dense graphs ------------ #
    n_ml_l = _scaled(24, 60, 90, scale)
    n_ml_r = _scaled(18, 45, 70, scale)
    suite.append(SuiteInstance(
        name="movielens_100k",
        category=HIGH_DEGREE,
        paper_graph="movielens-100k rating (KONECT)",
        builder=lambda n_ml_l=n_ml_l, n_ml_r=n_ml_r: random_bipartite(n_ml_l, n_ml_r, 0.28, seed=100),
        bipartite=True,
        note="bipartite user-item structure; exact optimum via König",
    ))
    wl_dims = {"tiny": (26, 22, 0.22), "small": (90, 75, 0.105), "full": (110, 90, 0.09)}[scale]
    suite.append(SuiteInstance(
        name="wikipedia_link_lo",
        category=HIGH_DEGREE,
        paper_graph="wikipedia_link_lo (KONECT)",
        builder=lambda d=wl_dims: random_bipartite(d[0], d[1], d[2], seed=201),
        bipartite=True,
        note="the paper's hardest web-graph row (MVC exceeds the budget); "
             "generated bipartite so the optimum is still known via König",
    ))
    n_wc = _scaled(34, 140, 180, scale)
    suite.append(SuiteInstance(
        name="wikipedia_link_csb",
        category=HIGH_DEGREE,
        paper_graph="wikipedia_link_csb (KONECT)",
        builder=lambda n_wc=n_wc: phat_complement(n_wc, 1, seed=202),
        note="dense link graph; easy at every instance type in the paper",
    ))

    # --------------------- low-degree graphs ------------------------ #
    pg_side = _scaled(6, 12, 14, scale)
    suite.append(SuiteInstance(
        name="us_power_grid",
        category=LOW_DEGREE,
        paper_graph="US power grid (KONECT)",
        builder=lambda pg_side=pg_side: grid_graph(pg_side, pg_side),
        bipartite=True,
        note="planar lattice: the lowest average degree of the suite with a "
             "non-degenerate search (a pure near-tree reduces away at the "
             "root at this scale)",
    ))
    n_lf = _scaled(60, 300, 500, scale)
    suite.append(SuiteInstance(
        name="lastfm_asia",
        category=LOW_DEGREE,
        paper_graph="LastFM Asia (SNAP)",
        builder=lambda n_lf=n_lf: preferential_attachment(n_lf, 2, seed=43),
        note="heavy-tailed social graph",
    ))
    n_sc = _scaled(40, 150, 220, scale)
    suite.append(SuiteInstance(
        name="sister_cities",
        category=LOW_DEGREE,
        paper_graph="Sister Cities (KONECT)",
        builder=lambda n_sc=n_sc: watts_strogatz(n_sc, 4, 0.3, seed=44),
        note="sparse small-world graph with cycles that defeat the "
             "degree-one rule, giving a moderate search",
    ))
    n_v23 = _scaled(30, 140, 200, scale)
    suite.append(SuiteInstance(
        name="vc_exact_023",
        category=LOW_DEGREE,
        paper_graph="vc-exact_023 (PACE 2019)",
        builder=lambda n_v23=n_v23: random_bipartite(n_v23, n_v23, 6.3 / n_v23, seed=45),
        bipartite=True,
        note="deliberately search-hostile (MVC exceeds any budget, as in the "
             "paper); bipartite so k=min rows use the König optimum",
    ))
    n_v09 = _scaled(34, 160, 230, scale)
    suite.append(SuiteInstance(
        name="vc_exact_009",
        category=LOW_DEGREE,
        paper_graph="vc-exact_009 (PACE 2019)",
        builder=lambda n_v09=n_v09: random_bipartite(n_v09, n_v09, 6.4 / n_v09, seed=46),
        bipartite=True,
        note="as vc_exact_023, larger",
    ))
    return suite


def suite_instance(name: str, scale: str = "small") -> SuiteInstance:
    """Look one suite member up by name."""
    for inst in paper_suite(scale):
        if inst.name == name:
            return inst
    raise KeyError(f"no suite instance named {name!r}")
