"""Classical random graph models used by tests, sweeps and the suite."""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph

__all__ = [
    "gnp",
    "gnm",
    "preferential_attachment",
    "watts_strogatz",
    "random_bipartite",
    "planted_cover",
]


def gnp(n: int, p: float, *, seed: int = 0) -> CSRGraph:
    """Erdős–Rényi :math:`G(n, p)`."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    keep = rng.random(iu.size) < p
    return CSRGraph.from_edges(n, zip(iu[keep].tolist(), ju[keep].tolist()), validate=False)


def gnm(n: int, m: int, *, seed: int = 0) -> CSRGraph:
    """Uniform random graph with exactly ``m`` edges."""
    max_m = n * (n - 1) // 2
    if not 0 <= m <= max_m:
        raise ValueError(f"m must lie in [0, {max_m}]")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(max_m, size=m, replace=False)
    # Decode linear upper-triangular index into (u, v).
    iu, ju = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(n, zip(iu[chosen].tolist(), ju[chosen].tolist()), validate=False)


def preferential_attachment(n: int, k: int, *, seed: int = 0) -> CSRGraph:
    """Barabási–Albert-style growth: each new vertex attaches to ``k`` others.

    Produces the heavy-tailed sparse topology of social graphs (the paper's
    LastFM Asia instance).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if n <= k:
        return CSRGraph.complete(max(n, 0))
    rng = np.random.default_rng(seed)
    edges = set()
    # endpoint pool repeats vertices proportionally to their degree
    pool = list(range(k + 1))
    for u in range(k + 1):
        for v in range(u + 1, k + 1):
            edges.add((u, v))
            pool.extend((u, v))
    for v in range(k + 1, n):
        targets = set()
        while len(targets) < k:
            targets.add(int(pool[rng.integers(len(pool))]))
        for t in targets:
            edges.add((t, v) if t < v else (v, t))
            pool.extend((t, v))
    return CSRGraph.from_edges(n, sorted(edges), validate=False)


def watts_strogatz(n: int, k: int, beta: float, *, seed: int = 0) -> CSRGraph:
    """Watts–Strogatz small world: ring lattice with rewired shortcuts."""
    if k % 2 != 0 or k < 2:
        raise ValueError("k must be even and >= 2")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    edges = set()
    for u in range(n):
        for off in range(1, k // 2 + 1):
            v = (u + off) % n
            if u != v:
                edges.add((u, v) if u < v else (v, u))
    rewired = set()
    for (u, v) in sorted(edges):
        if rng.random() < beta:
            w = int(rng.integers(n))
            attempts = 0
            while (w == u or (min(u, w), max(u, w)) in rewired or attempts > 4 * n):
                w = int(rng.integers(n))
                attempts += 1
            if attempts <= 4 * n:
                rewired.add((min(u, w), max(u, w)))
                continue
        rewired.add((u, v))
    return CSRGraph.from_edges(n, sorted(rewired), validate=False)


def random_bipartite(n_left: int, n_right: int, p: float, *, seed: int = 0) -> CSRGraph:
    """Random bipartite graph — König's theorem makes these good test fodder
    (minimum vertex cover equals maximum matching)."""
    rng = np.random.default_rng(seed)
    edges = []
    for u in range(n_left):
        for v in range(n_right):
            if rng.random() < p:
                edges.append((u, n_left + v))
    return CSRGraph.from_edges(n_left + n_right, edges, validate=False)


def planted_cover(n: int, cover_size: int, extra_p: float = 0.0, *, seed: int = 0) -> CSRGraph:
    """A graph with a *known* vertex cover of size ``cover_size``.

    Every edge touches the planted set ``{0, .., cover_size-1}``, so the
    planted set is a valid cover and the optimum is at most ``cover_size``.
    Useful for upper-bound sanity tests on instances too big to brute force.
    """
    if not 0 <= cover_size <= n:
        raise ValueError("cover_size must lie in [0, n]")
    rng = np.random.default_rng(seed)
    edges = set()
    for u in range(cover_size):
        for v in range(u + 1, n):
            if rng.random() < max(extra_p, 0.3 if v >= cover_size else extra_p):
                edges.add((u, v))
    # Guarantee every planted vertex is useful (touches an independent vertex).
    for u in range(cover_size):
        if cover_size < n:
            v = cover_size + int(rng.integers(n - cover_size))
            edges.add((u, v))
    return CSRGraph.from_edges(n, sorted(edges), validate=False)
