"""Synthetic graph generators standing in for the paper's dataset collections."""

from .phat import PHAT_TIERS, phat, phat_complement
from .random_graphs import (
    gnm,
    gnp,
    planted_cover,
    preferential_attachment,
    random_bipartite,
    watts_strogatz,
)
from .structured import (
    binary_tree,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    disjoint_union,
    grid_graph,
    mvc_of_structured,
    path_graph,
    petersen,
    power_grid_like,
    star_graph,
)

__all__ = [
    "PHAT_TIERS",
    "phat",
    "phat_complement",
    "gnm",
    "gnp",
    "planted_cover",
    "preferential_attachment",
    "random_bipartite",
    "watts_strogatz",
    "binary_tree",
    "complete_bipartite",
    "complete_graph",
    "cycle_graph",
    "disjoint_union",
    "grid_graph",
    "mvc_of_structured",
    "path_graph",
    "petersen",
    "power_grid_like",
    "star_graph",
]
