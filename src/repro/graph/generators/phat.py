"""p_hat-style random graph generator.

The DIMACS ``p_hat`` family generalises :math:`G(n, p)` by giving every
vertex its own attachment propensity drawn from a range, which spreads the
degree distribution far wider than a uniform random graph.  The three
density tiers of each size (``p_hat300-1/2/3`` etc.) correspond to widening
probability ranges.  The paper evaluates on the *complements* of these
graphs, which are dense and produce deep, highly imbalanced vertex-cover
search trees — exactly the hard high-degree instances where the hybrid
engine shines.

We regenerate the family from its published construction idea: vertex
weights :math:`w_v \\sim U[0, 1]` and edge probability
:math:`p(u, v) = p_{lo} + w_u w_v (p_{hi} - p_{lo})`.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph

__all__ = ["phat", "phat_complement", "PHAT_TIERS"]

#: Probability ranges per density tier, mirroring the DIMACS convention that
#: tier 1 is sparse and tier 3 dense (pre-complement).
PHAT_TIERS = {
    1: (0.10, 0.35),
    2: (0.35, 0.65),
    3: (0.65, 0.90),
}


def phat(n: int, tier: int = 1, *, seed: int = 0) -> CSRGraph:
    """A p_hat-style graph on ``n`` vertices at the given density tier.

    Parameters
    ----------
    n:
        Vertex count.
    tier:
        1, 2 or 3 — widening edge-probability ranges per :data:`PHAT_TIERS`.
    seed:
        Seed for the deterministic generator.
    """
    if tier not in PHAT_TIERS:
        raise ValueError(f"tier must be one of {sorted(PHAT_TIERS)}")
    if n < 0:
        raise ValueError("n must be non-negative")
    p_lo, p_hi = PHAT_TIERS[tier]
    rng = np.random.default_rng(seed)
    weights = rng.random(n)
    iu, ju = np.triu_indices(n, k=1)
    prob = p_lo + weights[iu] * weights[ju] * (p_hi - p_lo)
    keep = rng.random(iu.size) < prob
    edges = list(zip(iu[keep].tolist(), ju[keep].tolist()))
    return CSRGraph.from_edges(n, edges, validate=False)


def phat_complement(n: int, tier: int = 1, *, seed: int = 0) -> CSRGraph:
    """The complement of a p_hat-style graph.

    The paper takes edge complements of the DIMACS instances (as prior work
    does), because a minimum vertex cover of the complement corresponds to a
    maximum clique of the original — the benchmark's intended use.  Note the
    DIMACS naming is inverted post-complement: ``*-1`` (sparse original)
    becomes the *densest* complement, matching the paper's Table I where
    ``p_hat300-1`` has the highest average degree of its size class.
    """
    return phat(n, tier, seed=seed).complement()
