"""Deterministic structured graphs: exact optima are known analytically.

These give the test suite closed-form ground truth (paths, cycles, stars,
complete and complete-bipartite graphs) and give the evaluation suite its
low-average-degree members (grid/power-grid-like topologies).
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite",
    "grid_graph",
    "binary_tree",
    "power_grid_like",
    "petersen",
    "disjoint_union",
    "mvc_of_structured",
]


def path_graph(n: int) -> CSRGraph:
    """Path on ``n`` vertices; optimum cover ``floor(n/2)``."""
    return CSRGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)], validate=False)


def cycle_graph(n: int) -> CSRGraph:
    """Cycle on ``n >= 3`` vertices; optimum cover ``ceil(n/2)``."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    edges = [(i, i + 1) for i in range(n - 1)] + [(0, n - 1)]
    return CSRGraph.from_edges(n, edges, validate=False)


def star_graph(n_leaves: int) -> CSRGraph:
    """Star with centre 0; optimum cover 1."""
    return CSRGraph.from_edges(n_leaves + 1, [(0, i) for i in range(1, n_leaves + 1)], validate=False)


def complete_graph(n: int) -> CSRGraph:
    """:math:`K_n`; optimum cover ``n - 1``."""
    return CSRGraph.complete(n)


def complete_bipartite(a: int, b: int) -> CSRGraph:
    """:math:`K_{a,b}`; optimum cover ``min(a, b)``."""
    edges = [(u, a + v) for u in range(a) for v in range(b)]
    return CSRGraph.from_edges(a + b, edges, validate=False)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """The ``rows x cols`` king-free lattice grid."""
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return CSRGraph.from_edges(rows * cols, edges, validate=False)


def binary_tree(depth: int) -> CSRGraph:
    """Complete binary tree of the given depth (depth 0 = single vertex)."""
    n = 2 ** (depth + 1) - 1
    edges = [((i - 1) // 2, i) for i in range(1, n)]
    return CSRGraph.from_edges(n, edges, validate=False)


def power_grid_like(n: int, *, extra_edges: int = 0, seed: int = 0) -> CSRGraph:
    """Sparse near-tree topology echoing the US power grid (avg degree ~1.3-2.7).

    A random spanning tree plus a few chords.  The paper's lowest-degree
    instance (US power grid, avg degree 1.33) is the template.
    """
    rng = np.random.default_rng(seed)
    edges = set()
    # random attachment tree (uniform recursive tree)
    for v in range(1, n):
        u = int(rng.integers(v))
        edges.add((u, v))
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 20 * max(extra_edges, 1):
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        attempts += 1
        if u != v and (min(u, v), max(u, v)) not in edges:
            edges.add((min(u, v), max(u, v)))
            added += 1
    return CSRGraph.from_edges(n, sorted(edges), validate=False)


def petersen() -> CSRGraph:
    """The Petersen graph; optimum cover 6."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return CSRGraph.from_edges(10, outer + spokes + inner, validate=False)


def disjoint_union(*graphs: CSRGraph) -> CSRGraph:
    """Disjoint union with vertex ids shifted left-to-right."""
    edges = []
    offset = 0
    for g in graphs:
        edges.extend((offset + u, offset + v) for u, v in g.edges())
        offset += g.n
    return CSRGraph.from_edges(offset, edges, validate=False)


def mvc_of_structured(kind: str, *params: int) -> int:
    """Closed-form optimum cover sizes for the structured families.

    Supported kinds: ``path``, ``cycle``, ``star``, ``complete``,
    ``complete_bipartite``, ``petersen``.
    """
    if kind == "path":
        return params[0] // 2
    if kind == "cycle":
        return (params[0] + 1) // 2
    if kind == "star":
        return 1 if params[0] >= 1 else 0
    if kind == "complete":
        return max(params[0] - 1, 0)
    if kind == "complete_bipartite":
        return min(params[0], params[1])
    if kind == "petersen":
        return 6
    raise ValueError(f"unknown structured family {kind!r}")
