"""Degree-array representation of intermediate graphs.

The paper (Section IV-B) represents each search-tree node's state ``(G', S)``
with a single *degree array*: one entry per original vertex, holding the
vertex's current degree if it is still in the graph or a sentinel if it has
been removed and added to the solution ``S``.  Combined with the immutable
CSR graph this is self-contained, which is what allows tree nodes to travel
through the global worklist between thread blocks.

This module provides the representation plus the batched removal operations
every engine uses.  All operations mutate ``deg`` in place and return the
number of edges they deleted so that callers can maintain an incremental
edge count (the paper keeps an analogous deleted-vertex counter).

Two hot-path facilities live here as well:

* :class:`DirtyQueue` — a deduplicating worklist of vertices whose degree
  changed.  The removal helpers push every decremented neighbour into the
  queues they are handed, which is what lets the vectorized reduction
  kernels (:mod:`repro.core.kernels`) re-examine only *dirty* vertices
  instead of rescanning the whole degree array every sweep.
* a pooled degree-array buffer on :class:`Workspace`
  (:meth:`Workspace.borrow_deg` / :meth:`Workspace.release_deg`), so the
  branch step's state copies recycle buffers instead of allocating a fresh
  array per tree node.

Removal validation (duplicate / already-removed batch members) is off on
the hot path; pass ``debug=True`` to re-enable it, as the tests do.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .csr import CSRGraph

__all__ = [
    "REMOVED",
    "DirtyQueue",
    "Workspace",
    "VCState",
    "WirePayload",
    "WIRE_VERSION_V2",
    "decode_wire",
    "wire_nbytes",
    "fresh_state",
    "alive_vertices",
    "cover_vertices",
    "recompute_edge_count",
    "remove_vertex_into_cover",
    "remove_vertices_into_cover",
    "remove_neighbors_into_cover",
    "remove_neighbors_batch_cheap",
    "alive_neighbors",
    "max_degree_vertex",
]

#: Sentinel degree value marking "removed from the graph, added to S".
REMOVED: int = -1

#: The self-contained serialized form of one :class:`VCState` (see
#: :meth:`VCState.to_wire`): ``(deg bytes, |S|, |E|, dirty bytes | None,
#: max_deg_hint)``.  Codec v2 (:meth:`VCState.to_wire_v2`) replaces the
#: tuple with a single version-tagged ``bytes`` frame; either form is a
#: valid wire payload and :func:`decode_wire` dispatches on the type.
WirePayload = Union[Tuple[bytes, int, int, Optional[bytes], int], bytes]

#: Leading version byte of a codec-v2 frame.  v1 payloads are tuples and
#: carry no version byte — the *type* of the payload is the discriminant.
WIRE_VERSION_V2 = 2

#: v2 frame header: version (B), mode (B: 0 dense / 1 sparse), pad (6x),
#: |S| (q), |E| (q), max_deg_hint (q), dirty count (q; -1 = no hint).
_WIRE_V2_HEADER = struct.Struct("<BB6xqqqq")
_WIRE_V2_COUNT = struct.Struct("<q")

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_I64.setflags(write=False)

#: Upper bound on pooled degree arrays kept per workspace.
_DEG_POOL_CAP = 64


class DirtyQueue:
    """Worklist of vertices whose degree recently changed.

    ``push`` appends an id array as-is — duplicates (within a push or
    across pushes) are fine, so removal hot paths enqueue raw adjacency
    gathers without paying for dedup.  ``drain_sorted`` settles the debt
    once per sweep: it hands back the pending ids deduplicated in
    ascending order and resets the queue.  The buffer grows geometrically
    and is bounded in practice by the degree decrements of one sweep.
    """

    __slots__ = ("buf", "count")

    def __init__(self, n: int):
        self.buf = np.empty(max(n, 16), dtype=np.int64)
        self.count = 0

    def push(self, verts: np.ndarray) -> None:
        """Append ``verts`` (any int dtype, duplicates allowed)."""
        k = verts.size
        if k == 0:
            return
        need = self.count + k
        if need > self.buf.size:
            grown = np.empty(max(need, 2 * self.buf.size), dtype=np.int64)
            grown[: self.count] = self.buf[: self.count]
            self.buf = grown
        self.buf[self.count : need] = verts
        self.count = need

    def drain_sorted(self) -> np.ndarray:
        """The pending vertices, deduplicated ascending; empties the queue."""
        if self.count == 0:
            return _EMPTY_I64
        out = np.unique(self.buf[: self.count])
        self.count = 0
        return out

    def clear(self) -> None:
        self.count = 0

    def seed(self, verts: np.ndarray) -> None:
        """Reset and fill with ``verts``."""
        self.count = 0
        self.push(verts)


@dataclass
class Workspace:
    """Reusable scratch buffers sized to one graph.

    Allocating boolean masks per operation dominates runtime for small
    graphs; engines allocate one workspace per traversal and reuse it
    (the HPC guides' "be easy on the memory" rule).  Besides the batch
    mask this carries a two-slot pair buffer (the degree-two-triangle
    rules' ``{u, w}`` batches), the lazily created dirty queues of the
    vectorized kernels, and a bounded pool of recycled degree arrays for
    the branch step's state copies.
    """

    n: int
    in_batch: np.ndarray = field(init=False)
    pair_buf: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.in_batch = np.zeros(self.n, dtype=bool)
        self.pair_buf = np.empty(2, dtype=np.int64)
        self._dirty: Optional[Tuple[DirtyQueue, DirtyQueue]] = None
        self._branch_queue: Optional[DirtyQueue] = None
        self._deg_pool: List[np.ndarray] = []

    @classmethod
    def for_graph(cls, graph: CSRGraph) -> "Workspace":
        return cls(graph.n)

    def dirty_queues(self) -> Tuple["DirtyQueue", "DirtyQueue"]:
        """The (degree-one, degree-two) candidate queues, created on demand.

        These queues are *per-cascade* scratch shared across every tree
        node the workspace serves: each cascade must seed them (a seed
        resets the pending count) and drain them to empty before
        returning, so no node's pending vertices ever leak into the next
        node's reduce (see the hygiene assert in
        :func:`repro.core.kernels.apply_reductions_fast`).
        """
        if self._dirty is None:
            self._dirty = (DirtyQueue(self.n), DirtyQueue(self.n))
        return self._dirty

    def branch_queue(self) -> "DirtyQueue":
        """Scratch queue collecting the branch step's touched vertices.

        :func:`repro.core.branching.expand_children` clears it, routes one
        child's removals through it, and drains it into the child's
        ``dirty`` hint — reusing one buffer for every branch instead of
        allocating a queue per tree node.
        """
        if self._branch_queue is None:
            self._branch_queue = DirtyQueue(self.n)
        return self._branch_queue

    def borrow_deg(self) -> np.ndarray:
        """A degree-array buffer: recycled if available, else freshly allocated."""
        if self._deg_pool:
            return self._deg_pool.pop()
        return np.empty(self.n, dtype=np.int32)

    def release_deg(self, deg: np.ndarray) -> None:
        """Return a dead state's degree array to the pool.

        The caller asserts exclusive ownership: nothing may read ``deg``
        after this call.  Foreign arrays (wrong size/dtype, read-only) are
        silently dropped so callers need not special-case them.
        """
        if (
            deg.size == self.n
            and deg.dtype == np.int32
            and deg.flags.writeable
            and len(self._deg_pool) < _DEG_POOL_CAP
        ):
            self._deg_pool.append(deg)


@dataclass
class VCState:
    """A self-contained search-tree node: ``(degree array, |S|, |E|)``.

    ``deg[v] == REMOVED`` iff ``v`` has been placed in the cover.  Vertices
    of degree zero remain in the graph but are irrelevant to any cover.

    ``dirty`` is the cross-node dirty-propagation hint: the vertices whose
    degree the branch step decremented into candidate range (``<= 2``) when
    this node was created, or ``None`` when unknown (the root, or a state
    whose provenance was lost).  A reducer that honours the hint seeds its
    worklist from it instead of rescanning all ``n`` degrees; every reducer
    — honouring or not — *consumes* it (sets it back to ``None``), so a
    hint can never outlive the one reduction cascade it describes.  The
    hint is advisory: ``None`` always means "full rescan" and stays exact.
    It may be a plain list (scalar branch path) or an int64 array
    (vectorized branch path); duplicates are allowed.

    ``max_deg_hint`` is a companion *stale-high* bound on the maximum
    alive degree (or ``-1`` for unknown): degrees only ever decrease down
    a subtree, so an ancestor's post-reduce maximum bounds every
    descendant's, letting the scalar cascade skip its ``deg.max()`` seed
    scan.  Stale-high is sound — at worst the high-degree rule performs
    one scan that finds nothing and re-tightens the bound.
    """

    deg: np.ndarray
    cover_size: int
    edge_count: int
    dirty: Optional[Sequence[int] | np.ndarray] = None
    max_deg_hint: int = -1

    def copy(self, ws: Optional["Workspace"] = None) -> "VCState":
        """A deep copy — pushed states must not alias the working state.

        With a workspace, the degree array comes from its buffer pool
        (filled by :meth:`Workspace.release_deg` when states die), which
        keeps the branch step allocation-free in steady state.  The dirty
        hint is shared by reference: it is read-only by contract and both
        copies describe the same pending cascade.
        """
        if ws is not None and ws.n == self.deg.size:
            buf = ws.borrow_deg()
            np.copyto(buf, self.deg)
            return VCState(buf, self.cover_size, self.edge_count, self.dirty,
                           self.max_deg_hint)
        return VCState(self.deg.copy(), self.cover_size, self.edge_count, self.dirty,
                       self.max_deg_hint)

    def cover(self) -> np.ndarray:
        """The cover ``S`` encoded by the sentinel entries."""
        return cover_vertices(self.deg)

    def to_wire(self) -> "WirePayload":
        """Serialize into the self-contained wire tuple (Section IV-B).

        ``(deg bytes, |S|, |E|, dirty-hint bytes or None, max_deg_hint)``
        — the same self-containedness that lets the GPU implementation
        move tree nodes between thread blocks, extended with both
        cross-node hints so a donated child reduces on the receiving
        worker exactly as it would have on the producer.  This codec is
        the *one* place a state crosses a process boundary; a new
        ``VCState`` field is added here (and in :meth:`from_wire`) or it
        does not travel.
        """
        dirty = self.dirty
        dirty_bytes = (
            None if dirty is None else np.asarray(dirty, dtype=np.int64).tobytes()
        )
        return self.deg.tobytes(), self.cover_size, self.edge_count, dirty_bytes, \
            self.max_deg_hint

    @classmethod
    def from_wire(cls, payload) -> "VCState":
        """Rebuild a state from :meth:`to_wire`'s tuple (fresh buffers)."""
        deg = np.frombuffer(payload[0], dtype=np.int32).copy()
        dirty = None if payload[3] is None else np.frombuffer(payload[3], dtype=np.int64)
        return cls(deg, payload[1], payload[2], dirty, payload[4])

    def to_wire_v2(self, root_deg: np.ndarray) -> bytes:
        """Serialize as one delta-encoded, version-tagged frame (codec v2).

        ``root_deg`` is the root degree plane — the degree vector of the
        *fresh* state, which every attached worker shares (see
        :mod:`repro.graph.plane`).  Near the top of the search tree almost
        every entry still matches it, so the frame ships sparse
        ``(idx, val)`` pairs instead of the full ``deg`` array; when the
        delta stops paying (``8·nnz >= 4·n``) the frame degrades to the
        dense array, never worse than v1 plus the fixed header.  Byte 0 is
        the codec version, so a receiver can refuse frames it does not
        speak instead of misdecoding them.
        """
        deg = self.deg
        n = deg.shape[0]
        changed = np.flatnonzero(deg != root_deg)
        sparse = changed.size * 8 < n * 4
        dirty = self.dirty
        if dirty is None:
            dirty_arr = None
            dirty_count = -1
        else:
            dirty_arr = np.asarray(dirty, dtype=np.int64)
            dirty_count = dirty_arr.size
        parts = [_WIRE_V2_HEADER.pack(WIRE_VERSION_V2, 1 if sparse else 0,
                                      self.cover_size, self.edge_count,
                                      self.max_deg_hint, dirty_count)]
        if dirty_arr is not None:
            parts.append(dirty_arr.tobytes())
        if sparse:
            parts.append(_WIRE_V2_COUNT.pack(changed.size))
            parts.append(changed.astype(np.int32).tobytes())
            parts.append(deg[changed].tobytes())
        else:
            parts.append(deg.tobytes())
        return b"".join(parts)

    @classmethod
    def from_wire_v2(cls, frame: bytes, root_deg: np.ndarray) -> "VCState":
        """Rebuild a state from a codec-v2 frame against the root plane."""
        version, mode, cover_size, edge_count, max_deg_hint, dirty_count = \
            _WIRE_V2_HEADER.unpack_from(frame, 0)
        if version != WIRE_VERSION_V2:
            raise ValueError(f"unknown wire codec version {version}")
        off = _WIRE_V2_HEADER.size
        dirty: Optional[np.ndarray] = None
        if dirty_count >= 0:
            dirty = np.frombuffer(frame, dtype=np.int64, count=dirty_count,
                                  offset=off)
            off += dirty_count * 8
        if mode == 1:
            (nnz,) = _WIRE_V2_COUNT.unpack_from(frame, off)
            off += _WIRE_V2_COUNT.size
            idx = np.frombuffer(frame, dtype=np.int32, count=nnz, offset=off)
            off += nnz * 4
            val = np.frombuffer(frame, dtype=np.int32, count=nnz, offset=off)
            deg = np.array(root_deg, dtype=np.int32, copy=True)
            deg[idx] = val
        else:
            deg = np.frombuffer(frame, dtype=np.int32,
                                count=root_deg.shape[0], offset=off).copy()
        return cls(deg, cover_size, edge_count, dirty, max_deg_hint)

    def n_alive(self) -> int:
        return int(np.count_nonzero(self.deg >= 0))

    def validate(self, graph: CSRGraph) -> None:
        """Raise if the incremental counters disagree with the array."""
        actual_cover = int(np.count_nonzero(self.deg == REMOVED))
        if actual_cover != self.cover_size:
            raise AssertionError(
                f"cover_size={self.cover_size} but {actual_cover} sentinel entries"
            )
        actual_edges = recompute_edge_count(graph, self.deg)
        if actual_edges != self.edge_count:
            raise AssertionError(
                f"edge_count={self.edge_count} but array encodes {actual_edges}"
            )


def fresh_state(graph: CSRGraph) -> VCState:
    """The root tree node: nothing removed, all static degrees intact."""
    return VCState(graph.degrees.astype(np.int32).copy(), 0, graph.m)


def decode_wire(payload: "WirePayload",
                root_deg: Optional[np.ndarray] = None) -> VCState:
    """Decode either wire codec: v1 tuples or v2 version-tagged frames.

    The payload *type* discriminates: a tuple is the frozen v1 codec, a
    ``bytes``/``memoryview`` frame carries its codec version in byte 0
    and needs the ``root_deg`` plane to expand sparse deltas.
    """
    if isinstance(payload, tuple):
        return VCState.from_wire(payload)
    if root_deg is None:
        raise ValueError("codec-v2 frame needs the root degree plane")
    return VCState.from_wire_v2(payload, root_deg)


def wire_nbytes(payload: "WirePayload") -> int:
    """Approximate on-the-wire size of one payload, for comms accounting.

    v2 frames are exact; v1 tuples are the sum of their buffer parts
    plus the fixed header the three scalars cost when pickled.
    """
    if isinstance(payload, tuple):
        dirty = payload[3]
        return len(payload[0]) + (0 if dirty is None else len(dirty)) + 24
    return len(payload)


def alive_vertices(deg: np.ndarray) -> np.ndarray:
    """Vertices still present in the intermediate graph."""
    return np.flatnonzero(deg >= 0).astype(np.int32)


def cover_vertices(deg: np.ndarray) -> np.ndarray:
    """Vertices removed into the cover (sentinel entries)."""
    return np.flatnonzero(deg == REMOVED).astype(np.int32)


def recompute_edge_count(graph: CSRGraph, deg: np.ndarray) -> int:
    """Reference ``|E(G')|`` from scratch: half the alive degree sum.

    Used by validation and tests; engines track the count incrementally.
    """
    alive = deg >= 0
    return int(deg[alive].sum()) // 2


def alive_neighbors(graph: CSRGraph, deg: np.ndarray, v: int) -> np.ndarray:
    """Neighbours of ``v`` still present in the intermediate graph."""
    nbrs = graph.neighbors(v)
    return nbrs[deg[nbrs] >= 0]


def remove_vertex_into_cover(
    graph: CSRGraph,
    deg: np.ndarray,
    v: int,
    dirty: Optional[Sequence[DirtyQueue]] = None,
) -> int:
    """Remove one alive vertex into the cover; return edges deleted.

    Mirrors the paper's single-vertex removal (Fig. 4 lines 27-28): set the
    sentinel, then decrement every alive neighbour's degree.  Decremented
    neighbours are pushed into every queue in ``dirty``.
    """
    dv = int(deg[v])
    if dv < 0:
        raise ValueError(f"vertex {v} already removed")
    deg[v] = REMOVED
    if dv:
        nbrs = graph.neighbors(v)
        live = nbrs[deg[nbrs] >= 0]
        deg[live] -= 1
        if dirty is not None:
            # Only vertices arriving at degree <= 2 can ever become rule
            # candidates, and any later decrement re-pushes them; filtering
            # here keeps the queues small on dense graphs.
            small = live[deg[live] <= 2]
            for queue in dirty:
                queue.push(small)
    return dv


def remove_vertices_into_cover(
    graph: CSRGraph,
    deg: np.ndarray,
    verts: Sequence[int] | np.ndarray,
    ws: Optional[Workspace] = None,
    *,
    debug: bool = False,
    dirty: Optional[Sequence[DirtyQueue]] = None,
) -> int:
    """Remove a *set* of alive vertices into the cover in one batch.

    Returns the number of edges deleted.  Edges internal to the batch are
    deleted once even though both endpoints vanish; duplicate appearance of
    an external neighbour across several batch members is handled with
    ``np.subtract.at`` since each occurrence is a distinct edge.

    This is hot-path code: batch sanity checks (no duplicates, no
    already-removed members) only run under ``debug=True``, and every
    decremented external neighbour is pushed into the queues in ``dirty``
    so the vectorized kernels can track exactly which vertices changed.
    """
    verts = np.asarray(verts, dtype=np.int64)
    if verts.size == 0:
        return 0
    if verts.size == 1:
        return remove_vertex_into_cover(graph, deg, int(verts[0]), dirty)
    if debug:
        if np.unique(verts).size != verts.size:
            raise ValueError("batch contains duplicate vertices")
        if np.any(deg[verts] < 0):
            raise ValueError("batch contains an already-removed vertex")
    if ws is None:
        ws = Workspace(deg.size)
    in_batch = ws.in_batch
    in_batch[verts] = True
    sum_deg = int(deg[verts].sum())
    # Gather all incident half-edges of the batch in one segment gather.
    # Widened once: int32 index arrays put every downstream gather on
    # NumPy's slow buffered path (see remove_neighbors_batch_cheap).
    nbrs_all, _, _ = graph.row_segments(verts)
    nbrs_all = nbrs_all.astype(np.int64)
    alive_mask = deg[nbrs_all] >= 0
    internal_half_edges = int(np.count_nonzero(alive_mask & in_batch[nbrs_all]))
    external = nbrs_all[alive_mask & ~in_batch[nbrs_all]]
    if external.size:
        # np.subtract.at is an order of magnitude slower than a bincount
        # whenever the batch touches a sizeable fraction of the graph.
        if deg.size <= (external.size << 4):
            counts = np.bincount(external, minlength=deg.size)
            np.subtract(deg, counts, out=deg, casting="unsafe")
        else:
            np.subtract.at(deg, external, 1)
    deg[verts] = REMOVED
    in_batch[verts] = False  # restore scratch
    if dirty is not None and external.size:
        small = external[deg[external] <= 2]  # see remove_vertex_into_cover
        for queue in dirty:
            queue.push(small)  # queues tolerate duplicate ids
    # Each internal edge contributed one unit to both endpoints' degrees.
    return sum_deg - internal_half_edges // 2


def remove_neighbors_into_cover(
    graph: CSRGraph,
    deg: np.ndarray,
    v: int,
    ws: Optional[Workspace] = None,
    *,
    dirty: Optional[Sequence[DirtyQueue]] = None,
) -> Tuple[int, int]:
    """Remove all alive neighbours of ``v`` into the cover (Fig. 4 lines 21-22).

    Returns ``(edges_deleted, n_removed)``.  ``v`` itself stays in the graph
    and necessarily ends with degree zero.  Every external vertex the batch
    decrements into candidate range is pushed into the queues in ``dirty``,
    which is how the branch step records the touched set it hands to the
    child's reduction cascade.

    Routed through :func:`remove_neighbors_batch_cheap` — one adjacency
    gather and one in-batch mask shared by the alive filter, the internal
    edge count and the decrement, with the touched set pushed raw into the
    queues (duplicates allowed by the queue contract).  The pre-fusion
    two-stage path (``alive_neighbors`` + the general batch removal) is
    kept as :func:`_remove_neighbors_reference`, the equivalence oracle
    and the A side of the ``remove_neighbors_fused`` pair in
    ``BENCH_micro.json``.
    """
    if ws is None:
        ws = Workspace(deg.size)
    deleted, n_removed, touched = remove_neighbors_batch_cheap(graph, deg, v, ws)
    if dirty is not None and touched.size:
        for queue in dirty:
            queue.push(touched)  # queues tolerate duplicate ids
    return deleted, n_removed


def _remove_neighbors_reference(
    graph: CSRGraph,
    deg: np.ndarray,
    v: int,
    ws: Optional[Workspace] = None,
    *,
    dirty: Optional[Sequence[DirtyQueue]] = None,
) -> Tuple[int, int]:
    """Pre-fusion neighbourhood removal: gather ``N_alive(v)``, then batch.

    Semantically :func:`remove_neighbors_into_cover`; pays a second
    adjacency mask (the ``alive_neighbors`` pre-pass) plus the general
    batch path's size dispatch and scratch bookkeeping.  Kept as the
    property-test oracle and interleaved A/B baseline.
    """
    live = alive_neighbors(graph, deg, v)
    if live.size == 0:
        return 0, 0
    deleted = remove_vertices_into_cover(graph, deg, live, ws, dirty=dirty)
    return deleted, int(live.size)


def remove_neighbors_batch_cheap(
    graph: CSRGraph,
    deg: np.ndarray,
    v: int,
    ws: Workspace,
) -> Tuple[int, int, np.ndarray]:
    """Neighbourhood removal stripped to the branch step's needs.

    Semantically :func:`remove_neighbors_into_cover`, minus everything the
    branch step does not need: no :class:`DirtyQueue` round-trip and no
    ``np.unique`` — the touched set is returned raw (duplicates possible,
    unordered), which the dirty-hint contract explicitly permits.  Returns
    ``(edges_deleted, n_removed, touched)`` where ``touched`` holds the
    external vertices left in candidate range (``deg <= 2``).

    The previous handoff of the deferred child to the general batch path
    measured *slower* than the scalar loop at n≈50 precisely because of
    those two overheads; this kernel is what makes batching win at
    moderate pivot degrees (``repro bench calibrate`` measures the
    remaining crossover, persisted as ``branch_batch_min_live``).
    """
    nbrs = graph.neighbors(v)
    live = nbrs[deg[nbrs] >= 0]
    k = int(live.size)
    if k == 0:
        return 0, 0, _EMPTY_I64
    if k == 1:
        u = int(live[0])
        deleted = remove_vertex_into_cover(graph, deg, u)
        ext = graph.neighbors(u).astype(np.int64)
        de = deg[ext]
        return deleted, 1, ext[(de >= 0) & (de <= 2)]
    # One upfront widening pays for every gather below: NumPy's fancy
    # indexing takes a ~3x slower buffered path for non-native (int32)
    # index arrays, and this kernel is nothing but gathers.
    live = live.astype(np.int64)
    sum_deg = int(deg[live].sum())
    flat, _, _ = graph.row_segments(live)
    flat = flat.astype(np.int64)
    # Decrement *every* alive target — including batch members, whose
    # entries are overwritten with the sentinel right after, so the
    # in-batch/external split (two mask ANDs plus a second boolean
    # gather) never needs to be materialised.  The internal half-edge
    # count falls out of the same bincount: occurrences of batch members
    # among the alive targets are exactly the half-edges internal to the
    # batch.
    alive_flat = flat[deg[flat] >= 0]
    if alive_flat.size:
        if deg.size <= (alive_flat.size << 4):
            counts = np.bincount(alive_flat, minlength=deg.size)
            internal_half_edges = int(counts[live].sum())
            np.subtract(deg, counts, out=deg, casting="unsafe")
        else:
            in_batch = ws.in_batch
            in_batch[live] = True
            internal_half_edges = int(np.count_nonzero(in_batch[alive_flat]))
            in_batch[live] = False  # restore scratch
            np.subtract.at(deg, alive_flat, 1)
    else:  # pragma: no cover - k >= 2 live neighbours imply alive targets
        internal_half_edges = 0
    deg[live] = REMOVED
    # Batch members sit at the sentinel now, so the alive filter drops
    # them and the survivors are exactly the external decremented set.
    da = deg[alive_flat]
    touched = alive_flat[(da >= 0) & (da <= 2)]
    return sum_deg - internal_half_edges // 2, k, touched


def max_degree_vertex(deg: np.ndarray) -> int:
    """The branching pivot: lowest-id vertex of maximum current degree.

    The sentinel is negative, so a plain argmax over the degree array finds
    an alive vertex whenever one exists — exactly the parallel reduction
    tree the paper performs over the degree array (Section IV-B).
    """
    return int(np.argmax(deg))
