"""Degree-array representation of intermediate graphs.

The paper (Section IV-B) represents each search-tree node's state ``(G', S)``
with a single *degree array*: one entry per original vertex, holding the
vertex's current degree if it is still in the graph or a sentinel if it has
been removed and added to the solution ``S``.  Combined with the immutable
CSR graph this is self-contained, which is what allows tree nodes to travel
through the global worklist between thread blocks.

This module provides the representation plus the batched removal operations
every engine uses.  All operations mutate ``deg`` in place and return the
number of edges they deleted so that callers can maintain an incremental
edge count (the paper keeps an analogous deleted-vertex counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "REMOVED",
    "Workspace",
    "VCState",
    "fresh_state",
    "alive_vertices",
    "cover_vertices",
    "recompute_edge_count",
    "remove_vertex_into_cover",
    "remove_vertices_into_cover",
    "remove_neighbors_into_cover",
    "alive_neighbors",
    "max_degree_vertex",
]

#: Sentinel degree value marking "removed from the graph, added to S".
REMOVED: int = -1


@dataclass
class Workspace:
    """Reusable scratch buffers sized to one graph.

    Allocating boolean masks per operation dominates runtime for small
    graphs; engines allocate one workspace per traversal and reuse it
    (the HPC guides' "be easy on the memory" rule).
    """

    n: int
    in_batch: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.in_batch = np.zeros(self.n, dtype=bool)

    @classmethod
    def for_graph(cls, graph: CSRGraph) -> "Workspace":
        return cls(graph.n)


@dataclass
class VCState:
    """A self-contained search-tree node: ``(degree array, |S|, |E|)``.

    ``deg[v] == REMOVED`` iff ``v`` has been placed in the cover.  Vertices
    of degree zero remain in the graph but are irrelevant to any cover.
    """

    deg: np.ndarray
    cover_size: int
    edge_count: int

    def copy(self) -> "VCState":
        """A deep copy — pushed states must not alias the working state."""
        return VCState(self.deg.copy(), self.cover_size, self.edge_count)

    def cover(self) -> np.ndarray:
        """The cover ``S`` encoded by the sentinel entries."""
        return cover_vertices(self.deg)

    def n_alive(self) -> int:
        return int(np.count_nonzero(self.deg >= 0))

    def validate(self, graph: CSRGraph) -> None:
        """Raise if the incremental counters disagree with the array."""
        actual_cover = int(np.count_nonzero(self.deg == REMOVED))
        if actual_cover != self.cover_size:
            raise AssertionError(
                f"cover_size={self.cover_size} but {actual_cover} sentinel entries"
            )
        actual_edges = recompute_edge_count(graph, self.deg)
        if actual_edges != self.edge_count:
            raise AssertionError(
                f"edge_count={self.edge_count} but array encodes {actual_edges}"
            )


def fresh_state(graph: CSRGraph) -> VCState:
    """The root tree node: nothing removed, all static degrees intact."""
    return VCState(graph.degrees.astype(np.int32).copy(), 0, graph.m)


def alive_vertices(deg: np.ndarray) -> np.ndarray:
    """Vertices still present in the intermediate graph."""
    return np.flatnonzero(deg >= 0).astype(np.int32)


def cover_vertices(deg: np.ndarray) -> np.ndarray:
    """Vertices removed into the cover (sentinel entries)."""
    return np.flatnonzero(deg == REMOVED).astype(np.int32)


def recompute_edge_count(graph: CSRGraph, deg: np.ndarray) -> int:
    """Reference ``|E(G')|`` from scratch: half the alive degree sum.

    Used by validation and tests; engines track the count incrementally.
    """
    alive = deg >= 0
    return int(deg[alive].sum()) // 2


def alive_neighbors(graph: CSRGraph, deg: np.ndarray, v: int) -> np.ndarray:
    """Neighbours of ``v`` still present in the intermediate graph."""
    nbrs = graph.neighbors(v)
    return nbrs[deg[nbrs] >= 0]


def remove_vertex_into_cover(graph: CSRGraph, deg: np.ndarray, v: int) -> int:
    """Remove one alive vertex into the cover; return edges deleted.

    Mirrors the paper's single-vertex removal (Fig. 4 lines 27-28): set the
    sentinel, then decrement every alive neighbour's degree.
    """
    dv = int(deg[v])
    if dv < 0:
        raise ValueError(f"vertex {v} already removed")
    deg[v] = REMOVED
    if dv:
        nbrs = graph.neighbors(v)
        live = nbrs[deg[nbrs] >= 0]
        deg[live] -= 1
    return dv


def remove_vertices_into_cover(
    graph: CSRGraph,
    deg: np.ndarray,
    verts: Sequence[int] | np.ndarray,
    ws: Optional[Workspace] = None,
) -> int:
    """Remove a *set* of alive vertices into the cover in one batch.

    Returns the number of edges deleted.  Edges internal to the batch are
    deleted once even though both endpoints vanish; duplicate appearance of
    an external neighbour across several batch members is handled with
    ``np.subtract.at`` since each occurrence is a distinct edge.
    """
    verts = np.asarray(verts, dtype=np.int64)
    if verts.size == 0:
        return 0
    if verts.size == 1:
        return remove_vertex_into_cover(graph, deg, int(verts[0]))
    if np.unique(verts).size != verts.size:
        raise ValueError("batch contains duplicate vertices")
    if np.any(deg[verts] < 0):
        raise ValueError("batch contains an already-removed vertex")
    if ws is None:
        ws = Workspace(deg.size)
    in_batch = ws.in_batch
    in_batch[verts] = True
    sum_deg = int(deg[verts].sum())
    # Gather all incident half-edges of the batch.
    chunks = [graph.neighbors(int(v)) for v in verts]
    nbrs_all = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int32)
    alive_mask = deg[nbrs_all] >= 0
    internal_half_edges = int(np.count_nonzero(alive_mask & in_batch[nbrs_all]))
    external = nbrs_all[alive_mask & ~in_batch[nbrs_all]]
    np.subtract.at(deg, external, 1)
    deg[verts] = REMOVED
    in_batch[verts] = False  # restore scratch
    # Each internal edge contributed one unit to both endpoints' degrees.
    return sum_deg - internal_half_edges // 2


def remove_neighbors_into_cover(
    graph: CSRGraph,
    deg: np.ndarray,
    v: int,
    ws: Optional[Workspace] = None,
) -> Tuple[int, int]:
    """Remove all alive neighbours of ``v`` into the cover (Fig. 4 lines 21-22).

    Returns ``(edges_deleted, n_removed)``.  ``v`` itself stays in the graph
    and necessarily ends with degree zero.
    """
    live = alive_neighbors(graph, deg, v)
    if live.size == 0:
        return 0, 0
    deleted = remove_vertices_into_cover(graph, deg, live, ws)
    return deleted, int(live.size)


def max_degree_vertex(deg: np.ndarray) -> int:
    """The branching pivot: lowest-id vertex of maximum current degree.

    The sentinel is negative, so a plain argmax over the degree array finds
    an alive vertex whenever one exists — exactly the parallel reduction
    tree the paper performs over the degree array (Section IV-B).
    """
    return int(np.argmax(deg))
