"""Graph substrate: CSR storage, degree-array states, generators and I/O."""

from .csr import CSRGraph
from .degree_array import (
    REMOVED,
    DirtyQueue,
    VCState,
    Workspace,
    fresh_state,
    max_degree_vertex,
    recompute_edge_count,
    remove_neighbors_into_cover,
    remove_vertex_into_cover,
    remove_vertices_into_cover,
)

__all__ = [
    "CSRGraph",
    "REMOVED",
    "DirtyQueue",
    "VCState",
    "Workspace",
    "fresh_state",
    "max_degree_vertex",
    "recompute_edge_count",
    "remove_neighbors_into_cover",
    "remove_vertex_into_cover",
    "remove_vertices_into_cover",
]
