"""Whitespace-separated edge-list files (KONECT / SNAP export style).

Vertex labels may be arbitrary non-negative integers; they are compacted to
a dense ``0..n-1`` range and the original labels returned alongside, which
is how KONECT dumps are normally consumed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple, Union

import numpy as np

from ..builders import relabel_dense
from ..csr import CSRGraph

__all__ = ["read_edgelist", "write_edgelist", "parse_edgelist", "format_edgelist"]

PathLike = Union[str, Path]


def parse_edgelist(text: str) -> Tuple[CSRGraph, np.ndarray]:
    """Parse edge-list text; returns ``(graph, original_labels)``.

    Lines starting with ``#`` or ``%`` are comments (SNAP and KONECT
    conventions respectively); self loops and duplicates are dropped.
    """
    edges = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line[0] in "#%":
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected two vertex ids, got {line!r}")
        u, v = int(parts[0]), int(parts[1])
        if u < 0 or v < 0:
            raise ValueError(f"line {lineno}: negative vertex id")
        if u != v:
            edges.append((u, v))
    return relabel_dense(0, edges)


def format_edgelist(graph: CSRGraph, *, header: str = "") -> str:
    """Serialise to edge-list text (dense 0-based ids)."""
    lines = []
    if header:
        lines.extend(f"# {h}" for h in header.splitlines())
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    return "\n".join(lines) + "\n"


def read_edgelist(path: PathLike) -> Tuple[CSRGraph, np.ndarray]:
    """Read an edge-list file; returns ``(graph, original_labels)``."""
    return parse_edgelist(Path(path).read_text())


def write_edgelist(graph: CSRGraph, path: PathLike, *, header: str = "") -> None:
    """Write an edge-list file."""
    Path(path).write_text(format_edgelist(graph, header=header))
