"""DIMACS graph format (.col / .clq) reader and writer.

The DIMACS challenge format the p_hat instances ship in::

    c comment lines
    p edge <n> <m>
    e <u> <v>        (1-based vertex ids)

The reader tolerates duplicate/mirrored ``e`` lines (several published
instances contain them) by deduplicating; the writer emits each edge once.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO, Union

from ..builders import from_edge_list
from ..csr import CSRGraph

__all__ = ["read_dimacs", "write_dimacs", "parse_dimacs", "format_dimacs"]

PathLike = Union[str, Path]


def parse_dimacs(text: str) -> CSRGraph:
    """Parse DIMACS-format text into a graph."""
    n = None
    declared_m = None
    edges = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if len(parts) != 4 or parts[1] not in ("edge", "col", "clq"):
                raise ValueError(f"line {lineno}: malformed problem line {line!r}")
            if n is not None:
                raise ValueError(f"line {lineno}: duplicate problem line")
            n = int(parts[2])
            declared_m = int(parts[3])
        elif parts[0] == "e":
            if n is None:
                raise ValueError(f"line {lineno}: edge before problem line")
            if len(parts) != 3:
                raise ValueError(f"line {lineno}: malformed edge line {line!r}")
            u, v = int(parts[1]) - 1, int(parts[2]) - 1
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"line {lineno}: vertex out of range")
            if u != v:
                edges.append((u, v))
        else:
            raise ValueError(f"line {lineno}: unknown record {parts[0]!r}")
    if n is None:
        raise ValueError("missing problem line")
    graph = from_edge_list(n, edges)
    if declared_m is not None and graph.m != declared_m and len(edges) != declared_m:
        # Tolerated: many published files count each direction once anyway.
        pass
    return graph


def format_dimacs(graph: CSRGraph, *, comment: str = "") -> str:
    """Serialise a graph to DIMACS text."""
    out = io.StringIO()
    if comment:
        for line in comment.splitlines():
            out.write(f"c {line}\n")
    out.write(f"p edge {graph.n} {graph.m}\n")
    for u, v in graph.edges():
        out.write(f"e {u + 1} {v + 1}\n")
    return out.getvalue()


def read_dimacs(path: PathLike) -> CSRGraph:
    """Read a DIMACS file from disk."""
    return parse_dimacs(Path(path).read_text())


def write_dimacs(graph: CSRGraph, path: PathLike, *, comment: str = "") -> None:
    """Write a DIMACS file to disk."""
    Path(path).write_text(format_dimacs(graph, comment=comment))
