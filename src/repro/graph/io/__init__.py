"""Graph file formats: DIMACS, edge lists, METIS."""

from .dimacs import format_dimacs, parse_dimacs, read_dimacs, write_dimacs
from .edgelist import format_edgelist, parse_edgelist, read_edgelist, write_edgelist
from .metis import format_metis, parse_metis, read_metis, write_metis

__all__ = [
    "format_dimacs",
    "parse_dimacs",
    "read_dimacs",
    "write_dimacs",
    "format_edgelist",
    "parse_edgelist",
    "read_edgelist",
    "write_edgelist",
    "format_metis",
    "parse_metis",
    "read_metis",
    "write_metis",
]
