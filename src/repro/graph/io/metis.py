"""METIS ``.graph`` format reader and writer (PACE challenge distribution format).

Format::

    <n> <m> [fmt]
    <neighbours of vertex 1, 1-based, space separated>
    ...
    <neighbours of vertex n>

Only unweighted graphs (fmt absent or ``0``) are supported, which covers
the PACE vertex-cover track inputs this reproduction mimics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..builders import from_edge_list
from ..csr import CSRGraph

__all__ = ["read_metis", "write_metis", "parse_metis", "format_metis"]

PathLike = Union[str, Path]


def parse_metis(text: str) -> CSRGraph:
    """Parse METIS text into a graph.

    Blank lines *within* the body are legitimate: they are the adjacency
    rows of isolated vertices.
    """
    lines = [raw.split("%")[0].strip() for raw in text.splitlines()]
    start = 0
    while start < len(lines) and lines[start] == "":
        start += 1
    if start >= len(lines):
        raise ValueError("empty METIS file")
    header = lines[start].split()
    if len(header) not in (2, 3):
        raise ValueError(f"malformed header {lines[start]!r}")
    n, m = int(header[0]), int(header[1])
    if len(header) == 3 and header[2] not in ("0", "00", "000"):
        raise ValueError("weighted METIS graphs are not supported")
    rest = lines[start + 1:]
    trailing_junk = any(ln != "" for ln in rest[n:])
    if len(rest) < n or trailing_junk:
        raise ValueError(f"expected {n} adjacency rows, found {len(rest)}")
    rows = rest[:n]
    edges = []
    for u, row in enumerate(rows):
        for tok in row.split():
            v = int(tok) - 1
            if not 0 <= v < n:
                raise ValueError(f"vertex {v + 1} out of range in row {u + 1}")
            if u < v:
                edges.append((u, v))
    graph = from_edge_list(n, edges)
    if graph.m != m:
        raise ValueError(f"header declares {m} edges but body encodes {graph.m}")
    return graph


def format_metis(graph: CSRGraph) -> str:
    """Serialise a graph to METIS text."""
    lines = [f"{graph.n} {graph.m}"]
    for v in range(graph.n):
        lines.append(" ".join(str(int(u) + 1) for u in graph.neighbors(v)))
    return "\n".join(lines) + "\n"


def read_metis(path: PathLike) -> CSRGraph:
    """Read a METIS file from disk."""
    return parse_metis(Path(path).read_text())


def write_metis(graph: CSRGraph, path: PathLike) -> None:
    """Write a METIS file to disk."""
    Path(path).write_text(format_metis(graph))
