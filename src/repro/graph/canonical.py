"""Relabel-invariant canonical forms: vectorized WL refinement over CSR.

The solve cache (:mod:`repro.cache`) needs to recognise a graph it has
seen before even when the caller relabeled the vertices.  The standard
tool is Weisfeiler–Leman colour refinement: start every vertex at a
colour determined by its degree, then repeatedly recolour each vertex by
the multiset of its neighbours' colours.  The resulting colour partition
is invariant under vertex relabeling, so a key derived from it indexes
isomorphic-by-relabeling submissions to the same bucket.

Two distinct strengths of claim come out of a refinement run, and the
cache treats them very differently:

* :attr:`CanonicalForm.key` — a hash of ``(n, m, degree sequence, final
  colour histogram)``.  Equal keys are *necessary* for isomorphism but
  never sufficient (C6 and two disjoint triangles are both 2-regular on
  six vertices and share a key forever).  The key is only an index.
* :attr:`CanonicalForm.structure_hash` — defined only when refinement
  **individualizes** the graph (every colour class is a singleton).  The
  colours then induce a canonical vertex order, and hashing the
  adjacency *in that order* produces a value two graphs share iff the
  canonical relabelings are literally the same graph — i.e. equal
  structure hashes of two individualized graphs *prove* isomorphism.
  Graphs that refinement cannot individualize simply abstain
  (``structure_hash is None``); the cache degrades to exact-fingerprint
  matching for them, which is sound.

Everything is vectorized over the CSR arrays: neighbour colours are one
gather through ``indices``, per-row multiset signatures are wraparound
``uint64`` prefix-sum differences over scrambled colours (a commutative
multiset hash — no per-row sort needed), and recolouring is one
``np.unique(return_inverse=True)``.  No Python ``hash()`` anywhere: keys
must be stable across processes and interpreter seeds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .csr import CSRGraph

__all__ = ["CanonicalForm", "wl_colors", "canonical_form", "canonical_key"]

#: Format tag folded into every digest (bump on any derivation change —
#: old cache entries must not collide with keys from a new scheme).
CANONICAL_VERSION = 1

# SplitMix64 constants: a fixed, seed-free integer scrambler.
_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_MUL2 = np.uint64(0x94D049BB133111EB)


def _scramble(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, elementwise on ``uint64`` (wraparound is the point)."""
    z = x + _SM_GAMMA
    z = (z ^ (z >> np.uint64(30))) * _SM_MUL1
    z = (z ^ (z >> np.uint64(27))) * _SM_MUL2
    return z ^ (z >> np.uint64(31))


def wl_colors(graph: CSRGraph, rounds: int = 4) -> np.ndarray:
    """Weisfeiler–Leman colour refinement; returns dense int64 colours.

    Colours start as degree ranks and refine for up to ``rounds``
    iterations, stopping early once the partition stabilises (refinement
    only ever splits classes, so an unchanged class count is a fixpoint).
    The returned colouring is relabel-equivariant: for any permutation
    ``p``, ``wl_colors(p(G))[p(v)] == wl_colors(G)[v]``.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    degrees = graph.degrees.astype(np.int64)
    _, colors = np.unique(degrees, return_inverse=True)
    colors = colors.astype(np.int64)
    if graph.n == 0 or graph.m == 0:
        return colors
    n_colors = int(colors.max()) + 1
    for _ in range(rounds):
        if n_colors == graph.n:
            break  # fully individualized; nothing left to split
        # Commutative multiset hash of each row's neighbour colours:
        # scrambled colours summed mod 2**64 via prefix-sum differences
        # (empty rows fall out naturally as zero-length differences).
        neigh = _scramble(colors[graph.indices].astype(np.uint64))
        prefix = np.zeros(neigh.size + 1, dtype=np.uint64)
        np.cumsum(neigh, out=prefix[1:])
        row_sum = prefix[graph.indptr[1:]] - prefix[graph.indptr[:-1]]
        signature = _scramble(colors.astype(np.uint64) * _SM_MUL1 + row_sum)
        _, new_colors = np.unique(signature, return_inverse=True)
        new_colors = new_colors.astype(np.int64)
        new_count = int(new_colors.max()) + 1
        if new_count == n_colors:
            break
        colors, n_colors = new_colors, new_count
    return colors


@dataclass(frozen=True)
class CanonicalForm:
    """The relabel-invariant identity of one graph (see module docstring).

    ``order`` (present iff ``individualized``) is the canonical
    permutation: ``order[i]`` is the original id of the vertex at
    canonical position ``i``; its inverse maps original ids to canonical
    positions, which is how covers are transported between isomorphic
    copies of an instance.
    """

    key: str
    individualized: bool
    order: Optional[np.ndarray]
    structure_hash: Optional[str]
    n: int
    m: int

    def positions(self) -> np.ndarray:
        """Inverse of ``order``: original vertex id -> canonical position."""
        if self.order is None:
            raise ValueError("graph was not individualized; no canonical positions")
        pos = np.empty(self.n, dtype=np.int64)
        pos[self.order] = np.arange(self.n, dtype=np.int64)
        return pos


def canonical_form(graph: CSRGraph, rounds: int = 4) -> CanonicalForm:
    """Compute the full canonical identity of ``graph``."""
    colors = wl_colors(graph, rounds=rounds)
    degrees = np.sort(graph.degrees.astype(np.int64))
    histogram = np.sort(np.bincount(colors, minlength=0).astype(np.int64)) \
        if colors.size else np.empty(0, dtype=np.int64)
    digest = hashlib.sha256()
    digest.update(f"canon:v{CANONICAL_VERSION}:{graph.n}:{graph.m}:".encode())
    digest.update(degrees.astype("<i8").tobytes())
    digest.update(b":")
    digest.update(histogram.astype("<i8").tobytes())
    key = digest.hexdigest()

    individualized = bool(colors.size == graph.n and
                          (graph.n == 0 or int(colors.max()) + 1 == graph.n))
    order: Optional[np.ndarray] = None
    structure_hash: Optional[str] = None
    if individualized:
        order = np.argsort(colors, kind="stable").astype(np.int64)
        pos = np.empty(graph.n, dtype=np.int64)
        pos[order] = np.arange(graph.n, dtype=np.int64)
        # Each undirected edge appears twice in CSR; the min/max key keeps
        # one canonical-coordinate entry per orientation and sorting makes
        # the byte stream independent of the original row layout.
        src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees.astype(np.int64))
        a = pos[src]
        b = pos[graph.indices.astype(np.int64)]
        keys = np.sort(np.minimum(a, b) * graph.n + np.maximum(a, b))
        sdigest = hashlib.sha256()
        sdigest.update(f"struct:v{CANONICAL_VERSION}:{graph.n}:{graph.m}:".encode())
        sdigest.update(keys.astype("<i8").tobytes())
        structure_hash = sdigest.hexdigest()
        order.setflags(write=False)
    return CanonicalForm(key=key, individualized=individualized, order=order,
                         structure_hash=structure_hash, n=graph.n, m=graph.m)


def canonical_key(graph: CSRGraph, rounds: int = 4) -> str:
    """Just the relabel-invariant index key (see :class:`CanonicalForm`)."""
    return canonical_form(graph, rounds=rounds).key
