"""Static graph storage in Compressed Sparse Row (CSR) form.

The paper keeps a single, immutable CSR copy of the input graph that every
thread block reads (Section IV-B).  All intermediate graphs are expressed as
degree arrays layered on top of this structure (see
:mod:`repro.graph.degree_array`).

The adjacency list of every vertex is stored sorted ascending, which lets
:meth:`CSRGraph.has_edge` run as a binary search — the degree-two-triangle
reduction rule relies on fast adjacency tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable, simple, undirected graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the neighbours of vertex ``v``
        occupy ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int32`` array of neighbour ids, each undirected edge appearing
        twice (once per endpoint), sorted ascending within each row.
    validate:
        When true (the default) the constructor checks structural
        invariants: sortedness, symmetry, no self loops, no parallel edges.

    Notes
    -----
    Instances are treated as immutable: the underlying arrays are marked
    read-only so accidental mutation of the shared static graph (which the
    paper's kernels never modify) raises immediately.
    """

    __slots__ = ("indptr", "indices", "n", "m", "_degrees")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *, validate: bool = True):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        self.indptr = indptr
        self.indices = indices
        self.n = int(indptr.size - 1)
        if indices.size % 2 != 0:
            raise ValueError("indices length must be even for an undirected graph")
        self.m = int(indices.size // 2)
        self._degrees = np.diff(indptr).astype(np.int32)
        if validate:
            self._validate()
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self._degrees.setflags(write=False)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]], *, validate: bool = True) -> "CSRGraph":
        """Build a graph on ``n`` vertices from an iterable of edges.

        Duplicate edges (in either orientation) and self loops are rejected.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        pairs = _canonical_edge_array(n, edges)
        deg = np.zeros(n, dtype=np.int64)
        if pairs.size:
            np.add.at(deg, pairs[:, 0], 1)
            np.add.at(deg, pairs[:, 1], 1)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        cursor = indptr[:-1].copy()
        for u, v in pairs:
            indices[cursor[u]] = v
            cursor[u] += 1
            indices[cursor[v]] = u
            cursor[v] += 1
        # sort each adjacency row so has_edge can binary search
        for v in range(n):
            lo, hi = indptr[v], indptr[v + 1]
            indices[lo:hi] = np.sort(indices[lo:hi])
        return cls(indptr, indices, validate=validate)

    @classmethod
    def empty(cls, n: int) -> "CSRGraph":
        """An edgeless graph on ``n`` vertices."""
        return cls(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int32), validate=False)

    @classmethod
    def complete(cls, n: int) -> "CSRGraph":
        """The complete graph :math:`K_n`."""
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        return cls.from_edges(n, edges, validate=False)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def degree(self, v: int) -> int:
        """The degree of ``v`` in the static graph."""
        return int(self._degrees[v])

    @property
    def degrees(self) -> np.ndarray:
        """Read-only ``int32`` array of static degrees."""
        return self._degrees

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of the sorted neighbour list of ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Adjacency test via binary search on the shorter row."""
        if u == v:
            return False
        if self._degrees[u] > self._degrees[v]:
            u, v = v, u
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate each undirected edge exactly once as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v`` per row."""
        if self.m == 0:
            return np.empty((0, 2), dtype=np.int32)
        src = np.repeat(np.arange(self.n, dtype=np.int32), self._degrees)
        mask = src < self.indices
        return np.stack([src[mask], self.indices[mask]], axis=1)

    def max_degree(self) -> int:
        """:math:`\\Delta(G)` — zero for an edgeless graph."""
        return int(self._degrees.max(initial=0))

    def average_degree(self) -> float:
        """Mean degree ``2m / n`` (zero for the empty-vertex graph)."""
        return (2.0 * self.m / self.n) if self.n else 0.0

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def complement(self) -> "CSRGraph":
        """The complement graph (the paper complements DIMACS instances)."""
        n = self.n
        rows = []
        total = 0
        full = np.arange(n, dtype=np.int32)
        for v in range(n):
            nbrs = self.neighbors(v)
            keep = np.ones(n, dtype=bool)
            keep[nbrs] = False
            keep[v] = False
            row = full[keep]
            rows.append(row)
            total += row.size
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.empty(total, dtype=np.int32)
        pos = 0
        for v, row in enumerate(rows):
            indices[pos : pos + row.size] = row
            pos += row.size
            indptr[v + 1] = pos
        return CSRGraph(indptr, indices, validate=False)

    def subgraph(self, keep: Sequence[int]) -> "CSRGraph":
        """The induced subgraph ``G[keep]`` with vertices relabelled 0..len-1."""
        keep_arr = np.unique(np.asarray(keep, dtype=np.int64))
        if keep_arr.size and (keep_arr[0] < 0 or keep_arr[-1] >= self.n):
            raise ValueError("subgraph vertices out of range")
        relabel = -np.ones(self.n, dtype=np.int64)
        relabel[keep_arr] = np.arange(keep_arr.size)
        edges = []
        for u in keep_arr:
            ru = relabel[u]
            for v in self.neighbors(int(u)):
                rv = relabel[v]
                if rv >= 0 and ru < rv:
                    edges.append((int(ru), int(rv)))
        return CSRGraph.from_edges(keep_arr.size, edges, validate=False)

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # immutable, so hashable
        return hash((self.n, self.m, self.indices.tobytes()))

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.m}, avg_deg={self.average_degree():.2f})"

    def _validate(self) -> None:
        ind, ptr = self.indices, self.indptr
        if np.any(np.diff(ptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if ind.size and (ind.min() < 0 or ind.max() >= self.n):
            raise ValueError("neighbour id out of range")
        for v in range(self.n):
            row = ind[ptr[v] : ptr[v + 1]]
            if row.size == 0:
                continue
            if np.any(np.diff(row) <= 0):
                raise ValueError(f"adjacency row of vertex {v} not strictly sorted")
            pos = int(np.searchsorted(row, v))
            if pos < row.size and row[pos] == v:
                raise ValueError(f"self loop at vertex {v}")
        # symmetry: each (u, v) must have its mirror (v, u)
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(ptr))
        fwd = src * self.n + ind
        bwd = ind.astype(np.int64) * self.n + src
        if not np.array_equal(np.sort(fwd), np.sort(bwd)):
            raise ValueError("adjacency is not symmetric")


def _canonical_edge_array(n: int, edges: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Normalise edges to ``u < v`` rows, rejecting loops/dupes/range errors."""
    rows = []
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            raise ValueError(f"self loop ({u},{v}) not allowed in a simple graph")
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u},{v}) out of range for n={n}")
        rows.append((u, v) if u < v else (v, u))
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(rows, dtype=np.int64)
    keys = arr[:, 0] * n + arr[:, 1]
    uniq, counts = np.unique(keys, return_counts=True)
    if np.any(counts > 1):
        dup = uniq[counts > 1][0]
        raise ValueError(f"duplicate edge ({dup // n},{dup % n})")
    order = np.argsort(keys, kind="stable")
    return arr[order]
