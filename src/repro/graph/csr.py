"""Static graph storage in Compressed Sparse Row (CSR) form.

The paper keeps a single, immutable CSR copy of the input graph that every
thread block reads (Section IV-B).  All intermediate graphs are expressed as
degree arrays layered on top of this structure (see
:mod:`repro.graph.degree_array`).

The adjacency list of every vertex is stored sorted ascending, which lets
:meth:`CSRGraph.has_edge` run as a binary search — the degree-two-triangle
reduction rule relies on fast adjacency tests.

Batched access is first-class: :meth:`CSRGraph.row_segments` gathers the
adjacency rows of a whole vertex batch as one flat array plus segment
offsets, and :meth:`CSRGraph.has_edges` answers many adjacency queries with
a single binary search over a lazily cached, globally sorted edge-key
array.  The vectorized reduction kernels (:mod:`repro.core.kernels`) are
built entirely from these two primitives.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable, simple, undirected graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the neighbours of vertex ``v``
        occupy ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int32`` array of neighbour ids, each undirected edge appearing
        twice (once per endpoint), sorted ascending within each row.
    validate:
        When true (the default) the constructor checks structural
        invariants: sortedness, symmetry, no self loops, no parallel edges.

    Notes
    -----
    Instances are treated as immutable: the underlying arrays are marked
    read-only so accidental mutation of the shared static graph (which the
    paper's kernels never modify) raises immediately.
    """

    __slots__ = ("indptr", "indices", "n", "m", "_degrees", "_edge_keys", "_adj_tuples")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *, validate: bool = True):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        self.indptr = indptr
        self.indices = indices
        self.n = int(indptr.size - 1)
        if indices.size % 2 != 0:
            raise ValueError("indices length must be even for an undirected graph")
        self.m = int(indices.size // 2)
        self._degrees = np.diff(indptr).astype(np.int32)
        self._edge_keys = None  # lazy sorted (u * n + v) keys for has_edges
        self._adj_tuples = None  # lazy tuple-of-tuples adjacency for scalar kernels
        if validate:
            self._validate()
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self._degrees.setflags(write=False)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]], *, validate: bool = True) -> "CSRGraph":
        """Build a graph on ``n`` vertices from an iterable of edges.

        Duplicate edges (in either orientation) and self loops are rejected.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        pairs = _canonical_edge_array(n, edges)
        return cls._from_pairs(n, pairs, validate=validate)

    @classmethod
    def _from_pairs(cls, n: int, pairs: np.ndarray, *, validate: bool = False) -> "CSRGraph":
        """Build from a canonical ``(m, 2)`` int64 edge array (``u < v`` rows).

        Fully vectorized: both half-edge orientations are materialised and
        lexsorted by ``(src, dst)``, which yields the flat ``indices`` array
        directly with every row already sorted ascending.
        """
        if pairs.size == 0:
            return cls(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int32),
                       validate=validate)
        src = np.concatenate([pairs[:, 0], pairs[:, 1]])
        dst = np.concatenate([pairs[:, 1], pairs[:, 0]])
        order = np.lexsort((dst, src))
        indices = dst[order].astype(np.int32)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(indptr, indices, validate=validate)

    @classmethod
    def empty(cls, n: int) -> "CSRGraph":
        """An edgeless graph on ``n`` vertices."""
        return cls(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int32), validate=False)

    @classmethod
    def complete(cls, n: int) -> "CSRGraph":
        """The complete graph :math:`K_n`."""
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        return cls.from_edges(n, edges, validate=False)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def degree(self, v: int) -> int:
        """The degree of ``v`` in the static graph."""
        return int(self._degrees[v])

    @property
    def degrees(self) -> np.ndarray:
        """Read-only ``int32`` array of static degrees."""
        return self._degrees

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of the sorted neighbour list of ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Adjacency test via binary search on the shorter row."""
        if u == v:
            return False
        if self._degrees[u] > self._degrees[v]:
            u, v = v, u
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    def row_segments(self, verts: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather the adjacency rows of a vertex batch in one shot.

        Returns ``(flat, counts, offsets)`` where ``flat`` is the
        concatenation of the neighbour lists of ``verts`` (in batch order,
        each row sorted ascending), ``counts[i]`` is the degree of
        ``verts[i]`` and ``flat[offsets[i]:offsets[i + 1]]`` is its row.
        This replaces per-vertex ``neighbors()`` loops in the hot kernels.
        """
        verts = np.asarray(verts, dtype=np.int64)
        starts = self.indptr[verts]
        counts = self.indptr[verts + 1] - starts
        offsets = np.zeros(verts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return np.empty(0, dtype=np.int32), counts, offsets
        pos = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets[:-1], counts)
        return self.indices[pos], counts, offsets

    def _sorted_edge_keys(self) -> np.ndarray:
        """Lazily built, globally sorted ``u * n + v`` key per half-edge.

        Rows are sorted and laid out in vertex order, so the flat key array
        is globally ascending without any extra sort.
        """
        if self._edge_keys is None:
            src = np.repeat(np.arange(self.n, dtype=np.int64), self._degrees)
            keys = src * self.n + self.indices
            keys.setflags(write=False)
            self._edge_keys = keys
        return self._edge_keys

    def adjacency_tuples(self) -> tuple:
        """Adjacency as a lazily cached tuple of sorted int tuples.

        Plain-Python adjacency is what makes the scalar small-graph
        reduction path (:mod:`repro.core.kernels`) fast: iterating a tuple
        of ints costs nanoseconds per step where indexing a NumPy row pays
        scalar-boxing overhead.  Only ever built for small graphs — large
        ones take the vectorized path instead.
        """
        if self._adj_tuples is None:
            flat = self.indices.tolist()
            ptr = self.indptr.tolist()
            self._adj_tuples = tuple(
                tuple(flat[ptr[v] : ptr[v + 1]]) for v in range(self.n)
            )
        return self._adj_tuples

    def prewarm(self, *, adjacency: bool = False) -> None:
        """Build the lazy query caches up front.

        Thread-spawning engines call this from the launching thread so
        concurrent workers only ever read the caches instead of racing
        the lazy initialisers (redundant builds under the GIL, a genuine
        data race without it).  ``adjacency`` additionally builds the
        plain-Python adjacency used by the scalar kernels — skip it for
        large graphs, which never take the scalar path.
        """
        self._sorted_edge_keys()
        if adjacency:
            self.adjacency_tuples()

    def has_edges(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized adjacency test: ``out[i]`` iff ``us[i]~vs[i]`` is an edge.

        One binary search over the cached sorted edge-key array answers the
        whole batch — the bulk form of :meth:`has_edge` that the batched
        degree-two-triangle kernel relies on.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.size == 0:
            return np.zeros(0, dtype=bool)
        keys = self._sorted_edge_keys()
        if keys.size == 0:
            return np.zeros(us.shape, dtype=bool)
        n = self.n
        # Out-of-range ids must answer False (as has_edge's row lookup
        # would), not alias onto a valid u * n + v key.
        valid = (us >= 0) & (us < n) & (vs >= 0) & (vs < n)
        queries = us * n + vs
        pos = np.searchsorted(keys, queries)
        pos[pos == keys.size] = keys.size - 1
        return (keys[pos] == queries) & valid

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate each undirected edge exactly once as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v`` per row."""
        if self.m == 0:
            return np.empty((0, 2), dtype=np.int32)
        src = np.repeat(np.arange(self.n, dtype=np.int32), self._degrees)
        mask = src < self.indices
        return np.stack([src[mask], self.indices[mask]], axis=1)

    def max_degree(self) -> int:
        """:math:`\\Delta(G)` — zero for an edgeless graph."""
        return int(self._degrees.max(initial=0))

    def average_degree(self) -> float:
        """Mean degree ``2m / n`` (zero for the empty-vertex graph)."""
        return (2.0 * self.m / self.n) if self.n else 0.0

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def complement(self) -> "CSRGraph":
        """The complement graph (the paper complements DIMACS instances).

        Built via a dense adjacency mask (the complement is inherently
        :math:`O(n^2)`-sized); ``np.nonzero`` on the row-major mask yields
        the flat CSR indices with every row already sorted.
        """
        n = self.n
        if n == 0:
            return CSRGraph.empty(0)
        present = np.zeros((n, n), dtype=bool)
        src = np.repeat(np.arange(n, dtype=np.int64), self._degrees)
        present[src, self.indices] = True
        np.fill_diagonal(present, True)
        rows, cols = np.nonzero(~present)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return CSRGraph(indptr, cols.astype(np.int32), validate=False)

    def subgraph(self, keep: Sequence[int]) -> "CSRGraph":
        """The induced subgraph ``G[keep]`` with vertices relabelled 0..len-1."""
        keep_arr = np.unique(np.asarray(keep, dtype=np.int64))
        if keep_arr.size and (keep_arr[0] < 0 or keep_arr[-1] >= self.n):
            raise ValueError("subgraph vertices out of range")
        relabel = -np.ones(self.n, dtype=np.int64)
        relabel[keep_arr] = np.arange(keep_arr.size)
        flat, counts, _ = self.row_segments(keep_arr)
        src = np.repeat(relabel[keep_arr], counts)
        dst = relabel[flat]
        mask = (dst >= 0) & (src < dst)
        pairs = np.stack([src[mask], dst[mask]], axis=1) if flat.size else \
            np.empty((0, 2), dtype=np.int64)
        return CSRGraph._from_pairs(int(keep_arr.size), pairs)

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # immutable, so hashable
        return hash((self.n, self.m, self.indices.tobytes()))

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.m}, avg_deg={self.average_degree():.2f})"

    def _validate(self) -> None:
        ind, ptr = self.indices, self.indptr
        if np.any(np.diff(ptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if ind.size and (ind.min() < 0 or ind.max() >= self.n):
            raise ValueError("neighbour id out of range")
        for v in range(self.n):
            row = ind[ptr[v] : ptr[v + 1]]
            if row.size == 0:
                continue
            if np.any(np.diff(row) <= 0):
                raise ValueError(f"adjacency row of vertex {v} not strictly sorted")
            pos = int(np.searchsorted(row, v))
            if pos < row.size and row[pos] == v:
                raise ValueError(f"self loop at vertex {v}")
        # symmetry: each (u, v) must have its mirror (v, u)
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(ptr))
        fwd = src * self.n + ind
        bwd = ind.astype(np.int64) * self.n + src
        if not np.array_equal(np.sort(fwd), np.sort(bwd)):
            raise ValueError("adjacency is not symmetric")


def _canonical_edge_array(n: int, edges: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Normalise edges to ``u < v`` rows, rejecting loops/dupes/range errors."""
    rows = []
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            raise ValueError(f"self loop ({u},{v}) not allowed in a simple graph")
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u},{v}) out of range for n={n}")
        rows.append((u, v) if u < v else (v, u))
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(rows, dtype=np.int64)
    keys = arr[:, 0] * n + arr[:, 1]
    uniq, counts = np.unique(keys, return_counts=True)
    if np.any(counts > 1):
        dup = uniq[counts > 1][0]
        raise ValueError(f"duplicate edge ({dup // n},{dup % n})")
    order = np.argsort(keys, kind="stable")
    return arr[order]
