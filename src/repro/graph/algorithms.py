"""Classic graph algorithms used for preprocessing and analysis.

Connected components matter to vertex cover directly: the optimum of a
disconnected graph is the sum of its components' optima, and searching
components separately multiplies the bound-tightening power of ``best``
(the search tree of a union is the *product* of the component trees, the
sum of trees after splitting).  :func:`repro.core.decompose` builds on
this.  The k-core decomposition supports instance analysis: vertices
outside the 2-core are handled entirely by the degree-one rule.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "connected_components",
    "component_subgraphs",
    "core_numbers",
    "k_core_vertices",
    "bfs_distances",
    "is_connected",
]


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (labels are 0..c-1 in discovery order)."""
    labels = -np.ones(graph.n, dtype=np.int64)
    current = 0
    for start in range(graph.n):
        if labels[start] != -1:
            continue
        labels[start] = current
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                v = int(v)
                if labels[v] == -1:
                    labels[v] = current
                    queue.append(v)
        current += 1
    return labels


def component_subgraphs(graph: CSRGraph) -> List[Tuple[CSRGraph, np.ndarray]]:
    """Each component as ``(subgraph, original_vertex_ids)``.

    ``original_vertex_ids[i]`` is the input-graph id of the subgraph's
    vertex ``i``, so covers can be mapped back.
    """
    labels = connected_components(graph)
    out: List[Tuple[CSRGraph, np.ndarray]] = []
    for comp in range(int(labels.max(initial=-1)) + 1):
        verts = np.flatnonzero(labels == comp)
        out.append((graph.subgraph(verts), verts.astype(np.int64)))
    return out


def is_connected(graph: CSRGraph) -> bool:
    """True for the empty graph and any single-component graph."""
    if graph.n == 0:
        return True
    return bool((connected_components(graph) == 0).all())


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """The k-core number of every vertex (peeling algorithm, O(E))."""
    deg = graph.degrees.astype(np.int64).copy()
    core = np.zeros(graph.n, dtype=np.int64)
    # bucket queue over degrees
    order = np.argsort(deg, kind="stable")
    pos = np.empty(graph.n, dtype=np.int64)
    pos[order] = np.arange(graph.n)
    bin_start = np.zeros((int(deg.max(initial=0)) + 2), dtype=np.int64)
    for d in deg:
        bin_start[d + 1] += 1
    bin_start = np.cumsum(bin_start)
    bins = bin_start[:-1].copy()

    removed = np.zeros(graph.n, dtype=bool)
    for i in range(graph.n):
        v = int(order[i])
        core[v] = deg[v]
        removed[v] = True
        for u in graph.neighbors(v):
            u = int(u)
            if removed[u] or deg[u] <= deg[v]:
                continue
            # move u one bucket down (swap with the first member of its bin)
            du = deg[u]
            pu = pos[u]
            pw = bins[du]
            w = int(order[pw])
            if u != w:
                order[pu], order[pw] = order[pw], order[pu]
                pos[u], pos[w] = pw, pu
            bins[du] += 1
            deg[u] -= 1
    return core


def k_core_vertices(graph: CSRGraph, k: int) -> np.ndarray:
    """Vertices of the (maximal) k-core."""
    return np.flatnonzero(core_numbers(graph) >= k)


def bfs_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distances from ``source`` (-1 for unreachable vertices)."""
    if not 0 <= source < graph.n:
        raise ValueError("source out of range")
    dist = -np.ones(graph.n, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            v = int(v)
            if dist[v] == -1:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist
