"""Shared launch state and per-block execution context.

A :class:`SharedState` is the simulated device's global memory: the CSR
graph, the formulation's shared holders (incumbent bound / found flag), the
global worklist, and the termination-protocol counters.  Because the DES
resumes blocks in simulated-time order, plain Python mutation here is
equivalent to the CUDA implementation's atomics.

A :class:`BlockContext` is one thread block's view: its clock (written by
the scheduler before each resume), its local stack, its metrics, and the
``charge`` helpers that convert work units into cycles via the cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.bounds import DEFAULT_BOUND, make_bound
from ..core.formulation import Formulation
from ..core.nodestep import NodeStep
from ..core.parallel_reductions import apply_reductions_parallel
from ..graph.csr import CSRGraph
from ..graph.degree_array import Workspace
from .broker import BrokerWorklist
from .costmodel import CostModel
from .device import DeviceSpec
from .launch import LaunchConfig
from .local_stack import LocalStack
from .metrics import BlockMetrics

__all__ = ["SharedState", "BlockContext"]


@dataclass
class SharedState:
    """Device-global state for one kernel launch."""

    graph: CSRGraph
    formulation: Formulation
    worklist: BrokerWorklist
    device: DeviceSpec
    launch: LaunchConfig
    cost: CostModel
    num_blocks: int
    node_budget: Optional[int] = None
    cycle_budget: Optional[float] = None
    #: bound-policy name every block's NodeStep prunes with (BOUNDS registry).
    bound: str = DEFAULT_BOUND
    #: wall-clock deadline (absolute ``time.monotonic`` value) — the anytime
    #: layer's real-time breaker, distinct from the *virtual* cycle budget.
    deadline_at: Optional[float] = None
    nodes_visited: int = 0
    timed_out: bool = False
    deadline_tripped: bool = False
    waiting: int = 0
    active: int = 0
    done: bool = False
    subtree_cursor: int = 0   # StackOnly's next sub-tree index
    subtree_total: int = 0

    def note_node(self) -> None:
        """Count a visited tree node; trip the budget breaker if configured."""
        self.nodes_visited += 1
        if self.node_budget is not None and self.nodes_visited >= self.node_budget:
            self.timed_out = True
        if self.deadline_at is not None and time.monotonic() >= self.deadline_at:
            self.timed_out = True
            self.deadline_tripped = True

    def check_time(self, now: float) -> None:
        """Trip the (virtual) wall-clock breaker — the paper's two-hour cap."""
        if self.cycle_budget is not None and now > self.cycle_budget:
            self.timed_out = True

    def stop_search(self) -> bool:
        """True when every block should wind down."""
        return self.timed_out or self.done or self.formulation.stop_requested()

    def next_subtree(self) -> Optional[int]:
        """StackOnly's atomic sub-tree dispenser (hardware block dispatch)."""
        if self.subtree_cursor >= self.subtree_total:
            return None
        idx = self.subtree_cursor
        self.subtree_cursor += 1
        return idx


class BlockContext:
    """One simulated thread block's execution context."""

    __slots__ = ("block_id", "sm_id", "shared", "stack", "ws", "step", "metrics",
                 "now", "_pending", "tracer", "leftover")

    def __init__(self, block_id: int, sm_id: int, shared: SharedState, stack_bound: int):
        self.block_id = block_id
        self.sm_id = sm_id
        self.shared = shared
        self.stack = LocalStack(stack_bound)
        self.ws = Workspace.for_graph(shared.graph)
        # The shared node step, metered through this block's charge hook
        # with the Section IV-D parallel-semantics reduction rules and the
        # launch's bound policy (non-default bounds charge `lower_bound`).
        # faultable=False: a FaultInjected raise inside a cycle-charged
        # generator program would desynchronize the DES charge stream, not
        # model a recoverable crash — fault sites target the real engines.
        self.step = NodeStep(
            shared.graph, shared.formulation, self.ws,
            reducer=apply_reductions_parallel, charge=self.charge_units,
            bound=make_bound(shared.bound, shared.graph, self.ws),
            faultable=False,
        )
        self.metrics = BlockMetrics(block_id=block_id, sm_id=sm_id)
        self.now = 0.0           # written by the scheduler before each resume
        self._pending = 0.0      # cycles charged since the last yield
        self.tracer = None       # optional repro.sim.trace.TraceRecorder
        #: states this block still held when the launch was interrupted —
        #: the engine programs deposit their in-flight node here on exit,
        #: and the base engine folds it into ``EngineResult.pending_states``.
        self.leftover: List = []

    # ------------------------------------------------------------------ #
    # charging
    # ------------------------------------------------------------------ #
    def charge_units(self, kind: str, units: float) -> None:
        """ChargeFn-compatible callback: work units → cycles via the model.

        ``state_copy`` charges from :func:`expand_children` are dropped
        here; the copy cost is instead charged when the child state is
        actually moved (stack push or worklist add), which is where the
        CUDA implementation pays it.
        """
        if kind == "state_copy":
            return
        cycles = self.shared.cost.op_cycles(
            kind, units, self.shared.launch.block_size,
            use_shared=self.shared.launch.use_shared_mem,
        )
        self.metrics.charge(kind, cycles)
        self._pending += cycles
        if self.tracer is not None:
            self.tracer.record(self, kind, cycles)

    def charge_cycles(self, kind: str, cycles: float) -> None:
        """Charge pre-computed cycles (worklist ops report their own cost)."""
        self.metrics.charge(kind, cycles)
        self._pending += cycles
        if self.tracer is not None:
            self.tracer.record(self, kind, cycles)

    def state_move_cycles(self) -> float:
        """Cycles to copy one degree array between memory spaces."""
        return self.shared.cost.state_move_cycles(
            self.shared.graph.n, self.shared.launch.block_size,
            use_shared=self.shared.launch.use_shared_mem,
        )

    def take_pending(self) -> float:
        """Cycles accumulated since the last yield (the next yield value)."""
        out = self._pending
        self._pending = 0.0
        return out
