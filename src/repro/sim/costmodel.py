"""Cost model: abstract work units → simulated cycles.

Engines account work in *units* natural to each activity (degree-array
entries scanned, neighbour degrees touched, state words copied).  The cost
model turns a ``(kind, units)`` charge into cycles for a block of a given
width, reflecting that a wider block divides data-parallel work across more
threads while paying a fixed launch/convergence overhead per operation.

The eleven activity kinds match Fig. 6's breakdown exactly::

    work distribution : wl_add, wl_remove, stack_push, stack_pop, terminate
    reducing          : degree_one, degree_two_triangle, high_degree
    branching         : find_max, remove_vmax, remove_neighbors

plus the internal ``state_copy`` kind, folded into the stack/worklist
costs by the engines (copying the degree array is part of moving a tree
node, exactly as in the CUDA implementation).

One kind extends the paper's set: ``lower_bound`` meters the pluggable
bound policies of :mod:`repro.core.bounds` when a *non-default* bound is
active.  Charge rule: one evaluation charges the policy's
``cost_units`` — the degree entries / alive half-edges it examines (one
array scan for ``degree``, an adjacency walk ``2|E'| + n`` for
``matching``, ``2|E'|·sqrt(|V'|) + n`` for ``konig``, the member sum
for ``combined``) — priced like the reduction scans (memory-bound
degree-array traffic).  The charge fires only when the policy actually
evaluates: nodes killed by the free Buss pre-test (or a negative
budget) charge nothing, and an evaluation is billed at its full
``cost_units`` even when the budget ``cap`` truncates the walk early —
a deterministic, slightly conservative model.  The default ``greedy`` bound reads two counters
the state already carries and is **never** charged, so every engine's
charge stream under the default is bit-identical to the pre-bound-layer
code; Fig. 6 therefore shows a ``lower_bound`` column only for runs
that opted into a stronger bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CostModel", "KINDS", "WORK_DISTRIBUTION_KINDS", "REDUCE_KINDS",
           "BRANCH_KINDS", "BOUND_KINDS"]

WORK_DISTRIBUTION_KINDS = ("wl_add", "wl_remove", "stack_push", "stack_pop", "terminate")
REDUCE_KINDS = ("degree_one", "degree_two_triangle", "high_degree")
BRANCH_KINDS = ("find_max", "remove_vmax", "remove_neighbors")
#: Non-default bound-policy evaluations (see the charge rule above).
BOUND_KINDS = ("lower_bound",)
KINDS = WORK_DISTRIBUTION_KINDS + REDUCE_KINDS + BRANCH_KINDS + BOUND_KINDS + ("state_copy",)

_DEFAULT_BASE: Dict[str, float] = {
    # fixed overhead per operation (instruction issue, sync, pointer chasing)
    "wl_add": 300.0,
    "wl_remove": 400.0,
    "stack_push": 30.0,
    "stack_pop": 30.0,
    "terminate": 200.0,
    "degree_one": 40.0,
    "degree_two_triangle": 40.0,
    "high_degree": 40.0,
    "find_max": 30.0,
    "remove_vmax": 30.0,
    "remove_neighbors": 30.0,
    "lower_bound": 40.0,
    "state_copy": 20.0,
}

_DEFAULT_PER_UNIT: Dict[str, float] = {
    # cycles per work unit before dividing across the block's threads
    "wl_add": 2.0,
    "wl_remove": 2.0,
    "stack_push": 2.0,
    "stack_pop": 2.0,
    "terminate": 0.0,
    # degree-array scans hit global/shared memory per entry; the dominant
    # per-node work, as in Fig. 6 where the rules take ~2/3 of kernel time
    "degree_one": 40.0,
    "degree_two_triangle": 40.0,
    "high_degree": 40.0,
    "find_max": 4.0,
    "remove_vmax": 24.0,    # atomic degree decrements
    "remove_neighbors": 24.0,
    # non-default bound evaluations scan degree/adjacency data like the
    # reduction rules do (memory-bound), hence the same per-entry price
    "lower_bound": 40.0,
    "state_copy": 4.0,
}


@dataclass(frozen=True)
class CostModel:
    """Tunable conversion from work units to cycles.

    ``worklist_serial_cycles`` is the length of the broker's critical
    section: concurrent worklist operations are serialised for this long,
    which is how worklist contention (Section IV-A's second drawback)
    manifests in the simulation.
    """

    base_cycles: Dict[str, float] = field(default_factory=lambda: dict(_DEFAULT_BASE))
    per_unit_cycles: Dict[str, float] = field(default_factory=lambda: dict(_DEFAULT_PER_UNIT))
    reduction_tree_step_cycles: float = 12.0  # per log2(block) step of find-max
    # The broker queue is engineered for fine-granular distribution (Kerbl
    # et al. report hundreds of millions of ops/s); its critical section is
    # short relative to a tree node's reduce work.
    worklist_serial_cycles: float = 40.0
    worklist_sleep_cycles: float = 3000.0     # Section IV-C's block sleep
    shared_mem_factor: float = 0.65           # shared-kernel speedup on data-parallel work
    global_mem_factor: float = 1.0

    def op_cycles(self, kind: str, units: float, block_size: int, *, use_shared: bool = True) -> float:
        """Cycles one block of ``block_size`` threads spends on an operation."""
        if kind not in self.base_cycles:
            raise KeyError(f"unknown cost kind {kind!r}")
        mem = self.shared_mem_factor if use_shared else self.global_mem_factor
        cycles = self.base_cycles[kind] + mem * self.per_unit_cycles[kind] * units / block_size
        if kind == "find_max":
            # parallel reduction tree over the degree array
            cycles += self.reduction_tree_step_cycles * math.log2(max(block_size, 2))
        return cycles

    def state_move_cycles(self, n_vertices: int, block_size: int, *, use_shared: bool = True) -> float:
        """Cycles to copy one degree array (the payload of any push/pop/add)."""
        return self.op_cycles("state_copy", float(n_vertices), block_size, use_shared=use_shared)

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly scaled copy (used by cost-sensitivity sweeps)."""
        return CostModel(
            base_cycles={k: v * factor for k, v in self.base_cycles.items()},
            per_unit_cycles={k: v * factor for k, v in self.per_unit_cycles.items()},
            reduction_tree_step_cycles=self.reduction_tree_step_cycles * factor,
            worklist_serial_cycles=self.worklist_serial_cycles * factor,
            worklist_sleep_cycles=self.worklist_sleep_cycles * factor,
            shared_mem_factor=self.shared_mem_factor,
            global_mem_factor=self.global_mem_factor,
        )
