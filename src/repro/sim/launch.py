"""Launch configuration: Section IV-E's block-size and kernel-variant logic.

The paper selects the number of threads per block to satisfy, jointly:

* an **upper limit** — the hardware block-size cap, and ``|V(G)|`` (threads
  beyond the vertex count do no work);
* a **lower limit** — the threads-per-block needed to reach full occupancy
  given the cap on simultaneously resident blocks, which itself is the
  minimum of (a) the hardware resident-block limit, (b) the shared-memory
  limit (one intermediate graph per block in shared memory), and (c) the
  global-memory limit (one maximally provisioned local stack per block).

If no block size can satisfy both limits under the shared-memory kernel,
the implementation falls back to the global-memory kernel variant; if even
that fails, the kernel runs below full occupancy at the upper-limit block
size.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ["LaunchConfig", "select_launch_config", "stack_entry_bytes", "prev_pow2", "next_pow2"]

#: Per-entry header: cover-size and edge-count counters plus bookkeeping,
#: mirroring the counter the paper stores alongside each degree array.
_ENTRY_HEADER_BYTES = 16
#: Degree arrays hold 32-bit degrees.
_BYTES_PER_VERTEX = 4


def prev_pow2(x: int) -> int:
    """Largest power of two <= x (x >= 1)."""
    if x < 1:
        raise ValueError("x must be >= 1")
    return 1 << (x.bit_length() - 1)


def next_pow2(x: int) -> int:
    """Smallest power of two >= x (x >= 1)."""
    if x < 1:
        raise ValueError("x must be >= 1")
    return 1 << ((x - 1).bit_length()) if x > 1 else 1


def stack_entry_bytes(n_vertices: int) -> int:
    """Bytes one intermediate graph (degree array + counters) occupies."""
    return n_vertices * _BYTES_PER_VERTEX + _ENTRY_HEADER_BYTES


@dataclass(frozen=True)
class LaunchConfig:
    """Resolved launch parameters for one kernel invocation."""

    block_size: int
    num_blocks: int
    blocks_per_sm: int
    use_shared_mem: bool
    full_occupancy: bool
    stack_depth_bound: int
    stack_bytes_per_block: int

    def total_threads(self) -> int:
        return self.block_size * self.num_blocks

    def global_stack_bytes(self) -> int:
        """Total global memory the per-block stacks reserve."""
        return self.stack_bytes_per_block * self.num_blocks


def select_launch_config(
    device: DeviceSpec,
    n_vertices: int,
    stack_depth_bound: int,
    *,
    block_size_override: int | None = None,
    force_shared: bool | None = None,
) -> LaunchConfig:
    """Resolve the launch configuration per Section IV-E.

    Parameters
    ----------
    device:
        Target (virtual) device.
    n_vertices:
        ``|V(G)|`` of the input graph — bounds useful threads per block.
    stack_depth_bound:
        Maximum search depth: the greedy cover size for MVC, ``k`` for PVC.
        Each block's stack is provisioned for this many entries.
    block_size_override:
        Force a specific block size (used by the robustness sweep of
        Section V-A).  Must be a power of two within hardware limits.
    force_shared:
        Pin the kernel variant instead of letting the fallback logic choose.
    """
    if n_vertices < 1:
        raise ValueError("graph must have at least one vertex")
    if stack_depth_bound < 1:
        stack_depth_bound = 1

    entry = stack_entry_bytes(n_vertices)
    stack_bytes = entry * stack_depth_bound

    upper = min(device.max_threads_per_block, max(device.warp_size, prev_pow2(n_vertices)))

    def resolve(use_shared: bool) -> LaunchConfig | None:
        # (a) hardware resident-block cap
        hw_blocks = device.max_resident_blocks()
        # (b) shared-memory cap: one intermediate graph per block
        if use_shared:
            if entry > device.max_shared_mem_per_block:
                return None
            shared_blocks_per_sm = device.shared_mem_per_sm // entry
            if shared_blocks_per_sm < 1:
                return None
            shared_blocks = device.num_sms * shared_blocks_per_sm
        else:
            shared_blocks = hw_blocks
        # (c) global-memory cap: one provisioned stack per block
        global_blocks = max(int(device.global_mem_bytes // stack_bytes), 0)
        if global_blocks < 1:
            return None
        max_blocks = min(hw_blocks, shared_blocks, global_blocks)

        desired_threads = device.num_sms * device.max_threads_per_sm
        lower = next_pow2(max(1, -(-desired_threads // max_blocks)))
        lower = max(lower, device.warp_size)

        if block_size_override is not None:
            bs = block_size_override
            if bs & (bs - 1):
                raise ValueError("block_size_override must be a power of two")
            if bs > device.max_threads_per_block:
                raise ValueError("block_size_override exceeds hardware limit")
            full = bs >= lower and bs <= upper
        elif lower <= upper:
            # Any power of two in [lower, upper] achieves full occupancy; we
            # take the smallest, which maximises the number of blocks and
            # hence extractable parallelism.
            bs = lower
            full = True
        else:
            bs = upper
            full = False

        num_blocks = max(1, min(max_blocks, desired_threads // bs))
        blocks_per_sm = max(1, num_blocks // device.num_sms)
        num_blocks = min(num_blocks, blocks_per_sm * device.num_sms)
        return LaunchConfig(
            block_size=bs,
            num_blocks=num_blocks,
            blocks_per_sm=blocks_per_sm,
            use_shared_mem=use_shared,
            full_occupancy=full,
            stack_depth_bound=stack_depth_bound,
            stack_bytes_per_block=stack_bytes,
        )

    if force_shared is not None:
        cfg = resolve(force_shared)
        if cfg is None:
            raise ValueError("forced kernel variant cannot run this graph on this device")
        return cfg

    shared_cfg = resolve(True)
    if shared_cfg is not None and shared_cfg.full_occupancy:
        return shared_cfg
    global_cfg = resolve(False)
    if global_cfg is not None and global_cfg.full_occupancy:
        return global_cfg
    # Neither variant reaches full occupancy: prefer the shared variant if
    # it exists at all (faster accesses), else the global one.
    if shared_cfg is not None:
        return shared_cfg
    if global_cfg is not None:
        return global_cfg
    raise ValueError(
        f"graph with {n_vertices} vertices and depth bound {stack_depth_bound} "
        f"cannot be launched on {device.name}: stacks exceed global memory"
    )
