"""The virtual GPU: device specs, launch configuration, cost model,
discrete-event scheduler, broker worklist and per-block metrics."""

from .broker import BrokerWorklist, WorklistStats
from .context import BlockContext, SharedState
from .costmodel import BRANCH_KINDS, KINDS, REDUCE_KINDS, WORK_DISTRIBUTION_KINDS, CostModel
from .device import EPYC_LIKE, PRESETS, SMALL_SIM, TINY_SIM, V100, CPUSpec, DeviceSpec
from .launch import LaunchConfig, select_launch_config, stack_entry_bytes
from .local_stack import LocalStack, StackOverflowError
from .metrics import BlockMetrics, LaunchMetrics
from .scheduler import SimulationError, Simulator
from .trace import Span, TraceRecorder, attach_recorder, render_gantt

__all__ = [
    "BrokerWorklist",
    "WorklistStats",
    "BlockContext",
    "SharedState",
    "CostModel",
    "KINDS",
    "BRANCH_KINDS",
    "REDUCE_KINDS",
    "WORK_DISTRIBUTION_KINDS",
    "DeviceSpec",
    "CPUSpec",
    "EPYC_LIKE",
    "PRESETS",
    "V100",
    "SMALL_SIM",
    "TINY_SIM",
    "LaunchConfig",
    "select_launch_config",
    "stack_entry_bytes",
    "LocalStack",
    "StackOverflowError",
    "BlockMetrics",
    "LaunchMetrics",
    "SimulationError",
    "Simulator",
    "Span",
    "TraceRecorder",
    "attach_recorder",
    "render_gantt",
]
