"""Execution tracing for the virtual GPU.

A :class:`TraceRecorder` captures ``(block, start, end, kind)`` spans as
blocks charge work, giving a complete timeline of a launch — the moral
equivalent of an ``nsys``/``nvprof`` trace for the simulated device.  The
recorder can render an ASCII Gantt chart (each SM one row, time bucketed
into columns) and export spans as JSON for external tooling.

Tracing is opt-in: set ``engine.tracer = TraceRecorder()`` before a
solve (or assign ``ctx.tracer`` directly); every charge then emits one
span.  Overhead is one append per charge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .context import BlockContext
from .costmodel import BOUND_KINDS, BRANCH_KINDS, REDUCE_KINDS, WORK_DISTRIBUTION_KINDS

__all__ = ["Span", "TraceRecorder", "attach_recorder", "render_gantt"]

#: One glyph per activity group for the Gantt rendering.
_GROUP_GLYPHS = (
    (WORK_DISTRIBUTION_KINDS, "w"),
    (REDUCE_KINDS, "r"),
    (BRANCH_KINDS, "b"),
    (BOUND_KINDS, "l"),
)


@dataclass(frozen=True)
class Span:
    """One charged chunk of work on one block."""

    block_id: int
    sm_id: int
    start: float
    end: float
    kind: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceRecorder:
    """Collects spans; attach to contexts before running a simulation."""

    spans: List[Span] = field(default_factory=list)
    max_spans: int = 2_000_000

    def record(self, ctx: BlockContext, kind: str, cycles: float) -> None:
        if cycles <= 0 or len(self.spans) >= self.max_spans:
            return
        # ctx._pending holds work charged since the last yield: this span
        # begins after the already-pending work completes.
        start = ctx.now + (ctx._pending - cycles)
        self.spans.append(Span(ctx.block_id, ctx.sm_id, start, start + cycles, kind))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def spans_of_block(self, block_id: int) -> List[Span]:
        return [s for s in self.spans if s.block_id == block_id]

    def busy_cycles_by_kind(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for s in self.spans:
            out[s.kind] = out.get(s.kind, 0.0) + s.duration
        return out

    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def utilisation(self, num_blocks: int) -> float:
        """Busy fraction of the (blocks x makespan) area."""
        total = self.makespan() * num_blocks
        if total <= 0:
            return 0.0
        busy = sum(s.duration for s in self.spans)
        return min(busy / total, 1.0)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Chrome-trace-like JSON (one complete event per span)."""
        events = [
            {
                "name": s.kind,
                "ph": "X",
                "ts": s.start,
                "dur": s.duration,
                "pid": s.sm_id,
                "tid": s.block_id,
            }
            for s in self.spans
        ]
        return json.dumps({"traceEvents": events}, indent=None)


def attach_recorder(ctx: BlockContext, recorder: TraceRecorder) -> None:
    """Point a context's tracing hook at ``recorder``."""
    ctx.tracer = recorder


def _glyph(kind: str) -> str:
    for kinds, glyph in _GROUP_GLYPHS:
        if kind in kinds:
            return glyph
    return "."


def render_gantt(
    recorder: TraceRecorder,
    *,
    num_sms: int,
    width: int = 80,
    legend: bool = True,
) -> str:
    """ASCII Gantt chart: one row per SM, ``width`` time buckets.

    Each bucket shows the dominant activity group in that SM/time cell:
    ``w`` work distribution, ``r`` reducing, ``b`` branching, space idle.
    """
    makespan = recorder.makespan()
    if makespan <= 0:
        return "(empty trace)"
    bucket = makespan / width
    # per (sm, bucket): cycles per group glyph
    grid: List[List[Dict[str, float]]] = [
        [dict() for _ in range(width)] for _ in range(num_sms)
    ]
    for s in recorder.spans:
        glyph = _glyph(s.kind)
        b0 = min(int(s.start / bucket), width - 1)
        b1 = min(int(s.end / bucket), width - 1)
        for b in range(b0, b1 + 1):
            cell_start = b * bucket
            cell_end = cell_start + bucket
            overlap = min(s.end, cell_end) - max(s.start, cell_start)
            if overlap > 0:
                cell = grid[s.sm_id][b]
                cell[glyph] = cell.get(glyph, 0.0) + overlap
    lines = []
    for sm in range(num_sms):
        row = []
        for b in range(width):
            cell = grid[sm][b]
            row.append(max(cell, key=cell.get) if cell else " ")
        lines.append(f"SM{sm:02d} |{''.join(row)}|")
    out = "\n".join(lines)
    if legend:
        out += "\n      w=work distribution  r=reducing  b=branching  (blank=idle)"
    return out
