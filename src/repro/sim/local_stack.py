"""Per-block local stack, provisioned to a fixed depth bound.

Section IV-E: dynamic allocation is too expensive on GPUs, so each block's
stack is pre-allocated in global memory for the maximum possible tree depth
— the greedy cover size for MVC, or ``k`` for PVC.  The simulator enforces
the same bound: pushing beyond it is a hard error, because on the real
device it would corrupt memory, and the paper's argument is precisely that
the bound can never be exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..graph.degree_array import VCState

__all__ = ["LocalStack", "StackOverflowError"]


class StackOverflowError(RuntimeError):
    """A block exceeded its provisioned stack depth (must never happen)."""


@dataclass
class LocalStack:
    """Bounded LIFO of tree-node states."""

    depth_bound: int
    entries: List[VCState] = field(default_factory=list)
    peak_depth: int = 0
    pushes: int = 0
    pops: int = 0

    def __post_init__(self) -> None:
        if self.depth_bound < 1:
            raise ValueError("stack depth bound must be positive")

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def empty(self) -> bool:
        return not self.entries

    def push(self, state: VCState) -> None:
        if len(self.entries) >= self.depth_bound:
            raise StackOverflowError(
                f"stack depth bound {self.depth_bound} exceeded — the greedy/k "
                f"depth argument of Section IV-E has been violated"
            )
        self.entries.append(state)
        self.pushes += 1
        self.peak_depth = max(self.peak_depth, len(self.entries))

    def pop(self) -> VCState:
        if not self.entries:
            raise IndexError("pop from empty local stack")
        self.pops += 1
        return self.entries.pop()
