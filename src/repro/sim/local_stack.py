"""Per-block local stack, provisioned to a fixed depth bound.

Section IV-E: dynamic allocation is too expensive on GPUs, so each block's
stack is pre-allocated in global memory for the maximum possible tree depth
— the greedy cover size for MVC, or ``k`` for PVC.  The simulator enforces
the same bound: pushing beyond it is a hard error, because on the real
device it would corrupt memory, and the paper's argument is precisely that
the bound can never be exceeded.

Structurally this is the bounded, metric-instrumented realisation of the
:class:`~repro.core.frontier.LifoFrontier` policy — the simulated engines
compose it with the shared node step exactly as the sequential solver
composes its frontier, with the cost model charging each push/pop.
"""

from __future__ import annotations

from typing import List

from ..core.frontier import LifoFrontier
from ..graph.degree_array import VCState

__all__ = ["LocalStack", "StackOverflowError"]


class StackOverflowError(RuntimeError):
    """A block exceeded its provisioned stack depth (must never happen)."""


class LocalStack(LifoFrontier):
    """Bounded LIFO of tree-node states (a depth-bounded ``LifoFrontier``).

    Unlike the single-owner frontier contract, :meth:`pop` raises on an
    empty stack: a simulated block only pops after an explicit emptiness
    check (charged through the cost model), so an empty pop is a protocol
    bug, not a policy outcome.
    """

    __slots__ = ("depth_bound", "peak_depth", "pushes", "pops")

    def __init__(self, depth_bound: int) -> None:
        if depth_bound < 1:
            raise ValueError("stack depth bound must be positive")
        super().__init__()
        self.depth_bound = depth_bound
        self.peak_depth = 0
        self.pushes = 0
        self.pops = 0

    @property
    def entries(self) -> List[VCState]:
        """The resident states, oldest first (metrics / test introspection)."""
        return self._items

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, state: VCState) -> None:
        if len(self._items) >= self.depth_bound:
            raise StackOverflowError(
                f"stack depth bound {self.depth_bound} exceeded — the greedy/k "
                f"depth argument of Section IV-E has been violated"
            )
        self._items.append(state)
        self.pushes += 1
        self.peak_depth = max(self.peak_depth, len(self._items))

    def pop(self) -> VCState:
        if not self._items:
            raise IndexError("pop from empty local stack")
        self.pops += 1
        return self._items.pop()
