"""Broker-style global worklist with the paper's termination protocol.

Models the Broker Work Distributor (Kerbl et al.) as used in Section IV-C:
a bounded FIFO whose operations pass through a serialised critical section
(the source of worklist contention), plus the paper's modification — a
retry loop around removal in which a block that finds the list empty
checks whether *every* block in the grid is also waiting; if so the
traversal is finished, otherwise the block sleeps and retries.

The DES linearises operations by simulated time, so the ``busy_until``
hand-off below reproduces exactly the serialisation a hardware queue's
atomic broker induces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from ..graph.degree_array import VCState

__all__ = ["BrokerWorklist", "WorklistStats"]


@dataclass
class WorklistStats:
    """Population-conservation ledger (audited by tests)."""

    adds: int = 0
    removes: int = 0
    rejected_adds: int = 0
    failed_removes: int = 0
    peak_population: int = 0


@dataclass
class BrokerWorklist:
    """Bounded FIFO of self-contained tree nodes, with contention modelling.

    ``add``/``try_remove`` take the caller's current simulated time and
    return ``(result, cycles)`` where ``cycles`` includes any stall spent
    waiting for the critical section.
    """

    capacity: int
    serial_cycles: float = 180.0
    entries: Deque[VCState] = field(default_factory=deque)
    busy_until: float = 0.0
    stats: WorklistStats = field(default_factory=WorklistStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("worklist capacity must be positive")

    @property
    def population(self) -> int:
        return len(self.entries)

    def _enter_critical(self, now: float) -> float:
        """Serialise: returns the stall cycles before the op may start."""
        start = max(now, self.busy_until)
        self.busy_until = start + self.serial_cycles
        return start - now

    def add(self, state: VCState, now: float) -> Tuple[bool, float]:
        """Append an entry; returns ``(accepted, cycles)``."""
        stall = self._enter_critical(now)
        if len(self.entries) >= self.capacity:
            self.stats.rejected_adds += 1
            return False, stall + self.serial_cycles
        self.entries.append(state)
        self.stats.adds += 1
        self.stats.peak_population = max(self.stats.peak_population, len(self.entries))
        return True, stall + self.serial_cycles

    def try_remove(self, now: float) -> Tuple[Optional[VCState], float]:
        """Pop the oldest entry; returns ``(state_or_None, cycles)``."""
        stall = self._enter_critical(now)
        if self.entries:
            self.stats.removes += 1
            return self.entries.popleft(), stall + self.serial_cycles
        self.stats.failed_removes += 1
        return None, stall + self.serial_cycles

    def audit(self) -> None:
        """Population conservation: adds - removes == current population."""
        if self.stats.adds - self.stats.removes != len(self.entries):
            raise AssertionError(
                f"worklist ledger violated: {self.stats.adds} adds, "
                f"{self.stats.removes} removes, {len(self.entries)} resident"
            )
