"""Deterministic discrete-event scheduler for block coroutines.

Each simulated thread block is a Python generator that *yields* the number
of cycles its next chunk of work costs and performs its shared-state
interactions (worklist, incumbent bound, termination flags) inline between
yields.  The scheduler resumes blocks in global-time order, so every
shared-state access is linearised along the simulated clock — which is the
property the CUDA implementation gets from atomics, here by construction.

Determinism: ties on the clock are broken by an event sequence number, so
one configuration always produces one trajectory — identical covers,
identical per-SM loads, identical cycle totals.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Generator, Iterable, List, Optional

__all__ = ["BlockProgram", "Simulator", "SimulationError"]

#: Block programs yield cycle costs as plain floats.
BlockProgram = Generator[float, None, None]


class SimulationError(RuntimeError):
    """Raised when the simulation exceeds its event safety budget."""


@dataclass
class _BlockRun:
    block_id: int
    program: BlockProgram
    now: float = 0.0
    finished: bool = False


@dataclass
class Simulator:
    """Run a set of block programs to completion.

    Parameters
    ----------
    max_events:
        Safety valve against accidental non-termination (a buggy block that
        sleeps forever); generous by default.
    """

    max_events: int = 200_000_000
    events_processed: int = field(default=0, init=False)

    def run(self, programs: Iterable[BlockProgram], clocks: Optional[List[object]] = None) -> float:
        """Drive all programs; returns the makespan (latest finish time).

        ``clocks``, when given, must be one mutable object per program with
        a writable ``now`` attribute; the scheduler publishes the current
        simulated time there before each resume so the program (and any
        helper it calls) can read its own clock.
        """
        runs = [_BlockRun(i, prog) for i, prog in enumerate(programs)]
        heap: List[tuple[float, int, int]] = []
        seq = 0
        for run in runs:
            heap.append((0.0, seq, run.block_id))
            seq += 1
        heapq.heapify(heap)
        makespan = 0.0
        while heap:
            time_now, _, block_id = heapq.heappop(heap)
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events; simulation is likely stuck"
                )
            run = runs[block_id]
            run.now = time_now
            if clocks is not None:
                clocks[block_id].now = time_now
            try:
                delay = run.program.send(None)
            except StopIteration:
                run.finished = True
                makespan = max(makespan, time_now)
                continue
            if delay < 0:
                raise SimulationError(f"block {block_id} yielded negative delay {delay}")
            heapq.heappush(heap, (time_now + float(delay), seq, block_id))
            seq += 1
        unfinished = [r.block_id for r in runs if not r.finished]
        if unfinished:  # pragma: no cover - defensive
            raise SimulationError(f"blocks never finished: {unfinished}")
        return makespan
