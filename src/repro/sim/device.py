"""Virtual device specifications.

The paper evaluates on a Volta V100 (80 SMs, 32 GB).  The simulator ships a
faithful V100 preset plus smaller presets whose reduced SM counts keep the
discrete-event simulation cheap while preserving the blocks-per-SM
structure that the load-balance analysis (Fig. 5) depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "CPUSpec", "V100", "SMALL_SIM", "TINY_SIM", "EPYC_LIKE", "PRESETS"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware limits that drive launch configuration and the cost model."""

    name: str
    num_sms: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_mem_per_sm: int       # bytes
    max_shared_mem_per_block: int  # bytes
    global_mem_bytes: int
    max_threads_per_block: int
    warp_size: int = 32
    clock_mhz: float = 1380.0

    def __post_init__(self) -> None:
        if self.num_sms < 1 or self.max_threads_per_sm < self.warp_size:
            raise ValueError("degenerate device spec")
        if self.max_threads_per_block > self.max_threads_per_sm:
            raise ValueError("block cannot exceed SM thread capacity")

    def max_resident_blocks(self) -> int:
        """Hardware cap on simultaneously resident blocks across the device."""
        return self.num_sms * self.max_blocks_per_sm

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert simulated cycles into (virtual) seconds at the core clock."""
        return cycles / (self.clock_mhz * 1e6)


#: The paper's evaluation GPU.
V100 = DeviceSpec(
    name="V100",
    num_sms=80,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=96 * 1024,
    max_shared_mem_per_block=96 * 1024,
    global_mem_bytes=32 * 1024**3,
    max_threads_per_block=1024,
    clock_mhz=1380.0,
)

#: Default simulation device: same per-SM shape as the V100 with fewer SMs,
#: so a full-suite experiment stays fast while still exposing imbalance.
SMALL_SIM = DeviceSpec(
    name="SmallSim",
    num_sms=8,
    max_threads_per_sm=2048,
    max_blocks_per_sm=4,
    shared_mem_per_sm=96 * 1024,
    max_shared_mem_per_block=96 * 1024,
    global_mem_bytes=4 * 1024**3,
    max_threads_per_block=1024,
    clock_mhz=1380.0,
)

#: Miniature device for unit tests.
TINY_SIM = DeviceSpec(
    name="TinySim",
    num_sms=2,
    max_threads_per_sm=1024,
    max_blocks_per_sm=4,
    shared_mem_per_sm=48 * 1024,
    max_shared_mem_per_block=48 * 1024,
    global_mem_bytes=256 * 1024**2,
    max_threads_per_block=512,
    clock_mhz=1000.0,
)

PRESETS = {"v100": V100, "small": SMALL_SIM, "tiny": TINY_SIM}


@dataclass(frozen=True)
class CPUSpec:
    """Virtual CPU used to price the Sequential baseline through the cost
    model, making Table I's Sequential column commensurable with the
    simulated GPU engines.

    ``effective_width`` models superscalar issue + SIMD + cache locality:
    the scalar traversal retires roughly this many of the cost model's
    work units per cycle.  The default is calibrated so that one tree
    node costs a few microseconds on the virtual CPU, in line with the
    EPYC 7551P the paper used.
    """

    name: str = "EPYC-like"
    clock_mhz: float = 2600.0
    effective_width: int = 8

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e6)


EPYC_LIKE = CPUSpec()
