"""Per-block and per-SM accounting for the Fig. 5 / Fig. 6 analyses.

The paper instruments its kernels with SM clocks to attribute cycles to
eleven activities and counts tree nodes visited per SM.  The simulator
gets the same numbers for free: every charge lands in a
:class:`BlockMetrics`, and :class:`LaunchMetrics` folds blocks onto their
SMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .costmodel import KINDS

__all__ = ["BlockMetrics", "LaunchMetrics"]


@dataclass
class BlockMetrics:
    """Everything one simulated thread block did."""

    block_id: int
    sm_id: int
    cycles_by_kind: Dict[str, float] = field(default_factory=dict)
    counts_by_kind: Dict[str, int] = field(default_factory=dict)
    nodes_visited: int = 0
    subtrees_taken: int = 0          # StackOnly: sub-trees processed; Hybrid: worklist grabs
    peak_stack_depth: int = 0
    wl_sleeps: int = 0
    finish_time: float = 0.0

    def charge(self, kind: str, cycles: float) -> None:
        self.cycles_by_kind[kind] = self.cycles_by_kind.get(kind, 0.0) + cycles
        self.counts_by_kind[kind] = self.counts_by_kind.get(kind, 0) + 1

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles_by_kind.values())


@dataclass
class LaunchMetrics:
    """Aggregated view over one kernel launch."""

    blocks: List[BlockMetrics]
    num_sms: int
    makespan_cycles: float = 0.0

    def nodes_per_sm(self) -> np.ndarray:
        """Tree nodes visited by each SM (the Fig. 5 load metric)."""
        out = np.zeros(self.num_sms, dtype=np.int64)
        for b in self.blocks:
            out[b.sm_id] += b.nodes_visited
        return out

    def cycles_per_sm(self) -> np.ndarray:
        """Busy cycles accumulated by each SM's blocks."""
        out = np.zeros(self.num_sms, dtype=np.float64)
        for b in self.blocks:
            out[b.sm_id] += b.total_cycles
        return out

    def normalized_load(self) -> np.ndarray:
        """Per-SM node counts normalised to the mean (Fig. 5's y-axis)."""
        loads = self.nodes_per_sm().astype(np.float64)
        mean = loads.mean()
        if mean == 0:
            return np.zeros_like(loads)
        return loads / mean

    def total_nodes(self) -> int:
        return sum(b.nodes_visited for b in self.blocks)

    def cycles_by_kind(self) -> Dict[str, float]:
        """Launch-wide cycle totals per activity."""
        out: Dict[str, float] = {}
        for b in self.blocks:
            for kind, cyc in b.cycles_by_kind.items():
                out[kind] = out.get(kind, 0.0) + cyc
        return out

    def breakdown_fractions(self) -> Dict[str, float]:
        """Fig. 6's metric: per-block cycle fractions, averaged over blocks.

        Each block's cycle counts are normalised by that block's total
        before averaging, exactly as the paper describes its measurement.
        Blocks that did nothing (never got work) are excluded.
        """
        sums: Dict[str, float] = {k: 0.0 for k in KINDS}
        active = 0
        for b in self.blocks:
            total = b.total_cycles
            if total <= 0:
                continue
            active += 1
            for kind, cyc in b.cycles_by_kind.items():
                sums[kind] = sums.get(kind, 0.0) + cyc / total
        if active == 0:
            return {k: 0.0 for k in sums}
        return {k: v / active for k, v in sums.items()}

    def peak_stack_depth(self) -> int:
        return max((b.peak_stack_depth for b in self.blocks), default=0)
