"""Declarative experiment orchestration with a persistent, resumable store.

The layer the paper's evaluation grids run through (see
``docs/EXPERIMENTS.md`` for the spec schema and artifact layout)::

    spec.py    declarative grid (engines × frontiers × instances × types
               × repeats), validated against the live registries, with
               content-addressed spec hashes and per-cell fingerprints
    runner.py  expands the grid, skips fingerprint-matched completed
               cells, fans the rest over a process pool
    store.py   per-run artifacts (manifest.json / results.jsonl /
               report.md) plus the cross-run SQLite index
    report.py  regenerates the paper tables from the store and asserts
               stored charge streams bit-identical to live engine runs

CLI: ``repro experiment run|resume|report|index|list``.
"""

from .report import (
    RunDiff,
    VerificationError,
    diff_runs,
    render_diff,
    render_report,
    speedups_from_run,
    table1_from_run,
    verify_run_against_live,
    write_report,
)
from .runner import RunOutcome, plan_run, run_experiment
from .spec import (
    EXPERIMENT_ENGINES,
    WALL_CLOCK_ENGINES,
    CellSpec,
    ExperimentSpec,
    InstanceRef,
    cell_fingerprint,
    graph_fingerprint,
    load_spec,
    spec_hash,
)
from .store import Run, RunStore, validate_cell_record, validate_manifest

__all__ = [
    "EXPERIMENT_ENGINES",
    "WALL_CLOCK_ENGINES",
    "CellSpec",
    "ExperimentSpec",
    "InstanceRef",
    "Run",
    "RunDiff",
    "RunOutcome",
    "RunStore",
    "VerificationError",
    "diff_runs",
    "render_diff",
    "cell_fingerprint",
    "graph_fingerprint",
    "load_spec",
    "plan_run",
    "render_report",
    "run_experiment",
    "speedups_from_run",
    "spec_hash",
    "table1_from_run",
    "validate_cell_record",
    "validate_manifest",
    "verify_run_against_live",
    "write_report",
]
