"""Reports from the store: paper tables without re-solving anything.

Once a run's cells are persisted, every paper artifact they feed can be
regenerated offline — Table I (virtual seconds), the Table II-style
geometric-mean speedups, and the Fig. 4-adjacent search-tree shape
summary — by reading ``results.jsonl`` instead of re-running engines.

The one thing a store must never do is drift from the engines it claims
to describe, so :func:`verify_run_against_live` re-executes stored cells
through the very same :func:`~repro.analysis.experiments.run_cell` path
and asserts the persisted charge-stream integrals (virtual cycles,
virtual seconds), node counts and optima **bit-identical** — JSON
round-trips doubles exactly, so equality here is ``==``, not "approx".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import tables
from ..analysis.experiments import (
    INSTANCE_TYPES,
    CellResult,
    Table1Result,
    Table1Row,
    Table2Result,
    run_table2,
)
from .runner import _execute_cell, experiment_config
from .spec import ExperimentSpec
from .store import Run, RunStore

__all__ = [
    "table1_from_run",
    "speedups_from_run",
    "tree_shape_rows",
    "breakdown_rows",
    "render_report",
    "write_report",
    "VerificationError",
    "verify_run_against_live",
    "RunDiff",
    "diff_runs",
    "render_diff",
]


def _spec_of(run: Run) -> ExperimentSpec:
    """The run's spec — refusing cleanly when the run is not spec-shaped.

    The store also hosts runs created by ``repro table1|2|3 --store``
    (manifest spec kind ``table1``); those resume through the table
    commands, not through ``repro experiment``.
    """
    spec = dict(run.manifest["spec"])  # type: ignore[arg-type]
    if spec.get("kind") != "repro-vc-experiment-spec":
        raise ValueError(
            f"run {run.run_id!r} was not created by 'repro experiment run' "
            f"(spec kind {spec.get('kind', 'unknown')!r}); re-run the command "
            "that created it — e.g. 'repro table1 --store' runs resume there"
        )
    return ExperimentSpec.from_dict(spec)


def _suite_instance_for(info: Dict[str, object], scale: str):
    """A row's SuiteInstance: the live suite member, or a file stand-in."""
    from ..graph.generators.suites import SuiteInstance, suite_instance

    ref = info["ref"]
    if isinstance(ref, str):
        return suite_instance(ref, scale)
    return SuiteInstance(
        name=str(info["label"]),
        category="file",
        paper_graph=str(ref["path"]),  # type: ignore[index]
        builder=lambda: (_ for _ in ()).throw(
            RuntimeError("file instances render from stored metadata only")),
    )


def _select_cell(
    records: List[Dict[str, object]],
) -> Optional[Dict[str, object]]:
    """The Table I representative among a cell group's records.

    Groups hold one record per (frontier, bound, repeat); Table I shows
    the default discipline's first repeat — the same cell a plain
    ``run_table1`` computes — preferring ``lifo``/``None`` frontier, the
    default ``greedy`` bound and ``repeat == 0``, falling back
    deterministically.
    """
    if not records:
        return None

    def rank(rec: Dict[str, object]) -> Tuple[int, int, int, str, str]:
        frontier = rec["frontier"]
        bound = rec.get("bound", "greedy")
        return (0 if frontier in (None, "lifo") else 1,
                0 if bound == "greedy" else 1,
                int(rec["repeat"]),  # type: ignore[arg-type]
                str(frontier), str(bound))

    return sorted(records, key=rank)[0]


def table1_from_run(store: RunStore, run_id: str) -> Table1Result:
    """Rebuild the Table I layout purely from a run's stored cells."""
    run = store.get_run(run_id)
    spec = _spec_of(run)
    cfg = experiment_config(spec)
    grouped: Dict[Tuple[str, str, str], List[Dict[str, object]]] = {}
    for record in run.completed().values():
        key = (str(record["instance"]), str(record["engine"]),
               str(record["instance_type"]))
        grouped.setdefault(key, []).append(record)

    rows: List[Table1Row] = []
    for info in run.manifest.get("instances", []):  # type: ignore[union-attr]
        row = Table1Row(
            instance=_suite_instance_for(info, spec.scale),
            n=int(info["n"]), m=int(info["m"]),
            avg_degree=float(info["avg_degree"]),
            minimum=info["minimum"], min_source=str(info["min_source"]),
        )
        for itype in INSTANCE_TYPES:
            for engine in spec.engines:
                record = _select_cell(grouped.get(
                    (str(info["label"]), engine, itype), []))
                if record is not None:
                    row.cells[(engine, itype)] = CellResult.from_record(
                        record["result"])  # type: ignore[arg-type]
        rows.append(row)
    return Table1Result(rows=rows, config=cfg)


def speedups_from_run(store: RunStore, run_id: str) -> Table2Result:
    """Table II-style geometric-mean speedups computed from stored cells."""
    return run_table2(table1=table1_from_run(store, run_id))


def tree_shape_rows(run: Run) -> List[Dict[str, object]]:
    """Search-tree shape of every stored sequential cell (Fig. 4 stats)."""
    rows = []
    for record in run.completed().values():
        result = record["result"]
        tree = result.get("tree")  # type: ignore[union-attr]
        if record["engine"] != "sequential" or not tree:
            continue
        rows.append({
            "instance": record["instance"],
            "type": record["instance_type"],
            "frontier": record["frontier"] or "lifo",
            "bound": record.get("bound", "greedy"),
            "repeat": record["repeat"],
            "nodes": result["nodes"],  # type: ignore[index]
            "branches": tree["branches"],
            "prunes": tree["prunes"],
            "max depth": tree["max_depth"],
            "max stack": tree["max_stack"],
        })
    rows.sort(key=lambda r: (r["instance"], r["type"], r["frontier"],
                             r["bound"], r["repeat"]))
    return rows


def breakdown_rows(run: Run) -> List[Dict[str, object]]:
    """Per-group activity fractions of every stored cell carrying ``obs``.

    Cells of a telemetry-enabled spec persist either a predicted
    attribution (``cycles_by_kind``, sim engines) or a measured one
    (``wall_by_kind``, wall-clock engines); folding both onto the
    paper's four activity groups puts the cost model's prediction and
    the instrumented reality side by side in one table — the Fig. 6
    claim, checked against real engines instead of asserted.
    """
    from ..obs import breakdown as obs_breakdown

    grouped: Dict[Tuple[str, str, str], List[Dict[str, object]]] = {}
    for record in run.completed().values():
        result = record["result"]
        if isinstance(result, dict) and result.get("obs"):
            key = (str(record["instance"]), str(record["instance_type"]),
                   str(record["engine"]))
            grouped.setdefault(key, []).append(record)

    entries: List[Dict[str, object]] = []
    for instance, itype, engine in sorted(grouped):
        record = _select_cell(grouped[(instance, itype, engine)])
        obs = record["result"]["obs"]  # type: ignore[index]
        entry: Dict[str, object] = {"instance": f"{instance}/{itype}",
                                    "engine": engine}
        cycles = obs.get("cycles_by_kind")  # type: ignore[union-attr]
        if cycles:
            entry["predicted"] = obs_breakdown.group_fractions(
                cycles, obs_breakdown.sim_groups())
        wall = obs.get("wall_by_kind")  # type: ignore[union-attr]
        if wall:
            entry["measured"] = obs_breakdown.group_fractions(
                wall, obs_breakdown.WALL_GROUPS)
        if "predicted" in entry or "measured" in entry:
            entries.append(entry)
    return entries


def render_report(store: RunStore, run_id: str) -> str:
    """The run's ``report.md``: paper tables + reproduction footer."""
    run = store.get_run(run_id)
    manifest = run.manifest
    table1 = table1_from_run(store, run_id)
    speedups = speedups_from_run(store, run_id)
    shape = tree_shape_rows(run)

    parts = [
        f"# Experiment report — `{run.run_id}`",
        "",
        f"{len(run.completed())} stored cells over "
        f"{len(manifest.get('instances', []))} instances "  # type: ignore[arg-type]
        f"(status: {manifest['status']}).",
        "",
        "## Table I — execution time (virtual seconds)",
        "",
        "```",
        table1.render(),
        "```",
        "",
        "## Aggregate speedups (geometric mean)",
        "",
        "```",
        speedups.render(),
        "```",
        "",
        "## Search-tree shape (sequential cells)",
        "",
    ]
    if shape:
        headers = list(shape[0])
        parts.append(tables.render_markdown_table(
            headers, [[row[h] for h in headers] for row in shape]))
    else:
        parts.append("_no sequential cells in this run_")

    breakdown = breakdown_rows(run)
    if breakdown:
        from ..obs.breakdown import render_breakdown_table

        parts += [
            "",
            "## Activity breakdown — sim-predicted vs wall-measured",
            "",
            "```",
            render_breakdown_table(breakdown),
            "```",
        ]

    # Table I's layout fixes its engine columns (sequential / stackonly /
    # hybrid); any other stored engine — e.g. the globalonly ablation —
    # still gets its cells reported rather than silently dropped.
    table1_engines = {"sequential", "stackonly", "hybrid"}
    extra = sorted(
        (rec for rec in run.completed().values()
         if rec["engine"] not in table1_engines),
        key=lambda rec: (rec["instance"], rec["instance_type"],
                         rec["engine"], rec["repeat"]),
    )
    if extra:
        def timing_cell(rec: Dict[str, object]) -> str:
            # Wall-clock engines carry null virtual seconds; render their
            # measured wall instead of a misleading ">budget".
            result = rec["result"]  # type: ignore[index]
            seconds = result["seconds"]  # type: ignore[index]
            if seconds is None and result.get("wall_seconds") is not None:  # type: ignore[union-attr]
                wall = tables.format_seconds(result["wall_seconds"],  # type: ignore[index]
                                             bool(result["timed_out"]))  # type: ignore[index]
                return f"{wall} (wall)"
            return tables.format_seconds(seconds, bool(result["timed_out"]))  # type: ignore[arg-type,index]

        def team_cell(rec: Dict[str, object]) -> str:
            workers = rec.get("workers")
            hosts = rec.get("hosts")
            if workers is None and not hosts:
                return ""
            return f"{workers or ''}" + (f"+{hosts}h" if hosts else "")

        parts += ["", "## Engines outside the Table I columns", ""]
        parts.append(tables.render_markdown_table(
            ["instance", "type", "engine", "team", "seconds", "nodes", "optimum"],
            [[rec["instance"], rec["instance_type"], rec["engine"],
              team_cell(rec), timing_cell(rec),
              rec["result"]["nodes"], rec["result"]["optimum"]]  # type: ignore[index]
             for rec in extra]))
    prov = manifest["provenance"]
    parts += [
        "",
        "---",
        f"run `{run.run_id}` · spec `{str(manifest['spec_hash'])[:12]}` · "
        f"git `{str(prov['git_sha'])[:12]}` · "  # type: ignore[index]
        f"python {prov['python']} · numpy {prov['numpy']}",  # type: ignore[index]
        "",
    ]
    return "\n".join(parts)


def write_report(store: RunStore, run_id: str) -> str:
    """Render and persist ``report.md``; return the text."""
    text = render_report(store, run_id)
    store.get_run(run_id).write_report(text)
    return text


# --------------------------------------------------------------------- #
# bit-identical verification against live engines
# --------------------------------------------------------------------- #
class VerificationError(AssertionError):
    """A stored cell disagreed with its live re-execution."""


#: Result fields that must survive the store bit-identically.  Everything
#: deterministic is here; ``wall_seconds`` is real time and excluded.
_EXACT_FIELDS = ("seconds", "cycles", "nodes", "optimum", "feasible",
                 "timed_out", "detail", "tree")


def _verifiable_fields(record: Dict[str, object],
                       live: Dict[str, object]) -> Tuple[str, ...]:
    """Which result fields a live re-execution must reproduce exactly.

    Virtually priced cells are fully deterministic.  Wall-clock ``cpu-*``
    cells run under real scheduling: node counts, tie-broken covers and
    budget races vary run to run, so only the decision-level facts are
    comparable — the MVC optimum (exhaustive search is schedule-independent
    when it completes) and PVC feasibility; a best-so-far from a run that
    tripped its budget — on *either* side, stored or live — is not
    comparable at all.
    """
    from .spec import WALL_CLOCK_ENGINES

    if record["engine"] not in WALL_CLOCK_ENGINES:
        return _EXACT_FIELDS
    if record["result"].get("timed_out") or live.get("timed_out"):  # type: ignore[union-attr]
        return ()
    if record["instance_type"] == "mvc":
        return ("optimum", "feasible")
    return ("feasible",)


def verify_run_against_live(
    store: RunStore,
    run_id: str,
    *,
    max_cells: Optional[int] = None,
) -> int:
    """Re-run stored cells live; assert charge streams bit-identical.

    Every compared field — virtual ``seconds`` and ``cycles`` (the charge
    stream's integral), ``nodes``, ``optimum``, feasibility, tree shape —
    must match with ``==``.  Raises :class:`VerificationError` naming
    every mismatching cell and field; returns the number of verified
    cells on success.
    """
    run = store.get_run(run_id)
    spec_dict = _spec_of(run).to_dict()  # clean refusal for non-spec runs
    records = sorted(
        run.completed().values(),
        key=lambda rec: (rec["instance"], rec["engine"], rec["instance_type"],
                         str(rec["frontier"]), rec["repeat"]),
    )
    if max_cells is not None:
        records = records[:max_cells]
    mismatches: List[str] = []
    for record in records:
        identity = {key: record[key] for key in (
            "fingerprint", "instance", "engine", "frontier",
            "instance_type", "k", "repeat")}
        identity["bound"] = record.get("bound", "greedy")
        ref = next(
            info["ref"] for info in run.manifest["instances"]  # type: ignore[union-attr]
            if info["label"] == record["instance"])
        live = _execute_cell(spec_dict, identity, ref)["result"]
        stored = record["result"]
        for field in _verifiable_fields(record, live):
            if stored.get(field) != live.get(field):  # type: ignore[union-attr]
                mismatches.append(
                    f"{record['instance']}/{record['instance_type']}/"
                    f"{record['engine']}"
                    f"{'/' + str(record['frontier']) if record['frontier'] else ''}"
                    f" repeat={record['repeat']}: {field} stored="
                    f"{stored.get(field)!r} live={live.get(field)!r}")  # type: ignore[union-attr]
    if mismatches:
        raise VerificationError(
            "stored cells diverged from live engine invocation:\n  "
            + "\n  ".join(mismatches))
    return len(records)


# --------------------------------------------------------------------- #
# cross-run diff (over the SQLite index)
# --------------------------------------------------------------------- #
@dataclass
class RunDiff:
    """What changed between two runs' stored cells.

    Cells pair up by *logical identity* — (instance, engine, frontier,
    bound, instance type, k, repeat) — not by fingerprint, so a config
    change (new budget, re-tuned device) shows up as *changed* cells with
    deltas instead of disjoint added/removed sets.
    """

    run_a: str
    run_b: str
    added: List[Dict[str, object]] = field(default_factory=list)
    removed: List[Dict[str, object]] = field(default_factory=list)
    changed: List[Dict[str, object]] = field(default_factory=list)
    unchanged: int = 0


#: Logical identity of a cell within a run (fingerprint-independent).
_DIFF_KEY = ("instance", "engine", "frontier", "bound", "instance_type",
             "k", "repeat")

#: Result fields compared (and delta'd where numeric) between runs.
_DIFF_FIELDS = ("optimum", "feasible", "timed_out", "nodes", "cycles", "seconds")


def _diff_key(record: Dict[str, object]) -> Tuple[object, ...]:
    rec = dict(record)
    rec.setdefault("bound", "greedy")
    return tuple(rec.get(key) for key in _DIFF_KEY)


def diff_runs(store: RunStore, run_a: str, run_b: str) -> RunDiff:
    """Compare two runs' cells through the cross-run SQLite index.

    Both runs are (re)indexed from their on-disk artifacts first — the
    index is derived state, so the diff can never be stale — then read
    back with :meth:`RunStore.query_cells`.  Returns the added / removed
    / changed cell sets, with per-field deltas (nodes, cycles, seconds)
    on the changed ones.
    """
    store.index_run(store.get_run(run_a))
    store.index_run(store.get_run(run_b))
    cells_a = {_diff_key(rec): rec for rec in store.query_cells(run_id=run_a)}
    cells_b = {_diff_key(rec): rec for rec in store.query_cells(run_id=run_b)}

    diff = RunDiff(run_a=run_a, run_b=run_b)
    for key in sorted(set(cells_a) | set(cells_b), key=repr):
        a, b = cells_a.get(key), cells_b.get(key)
        if a is None:
            diff.added.append(b)
            continue
        if b is None:
            diff.removed.append(a)
            continue
        res_a, res_b = a["result"], b["result"]
        deltas: Dict[str, object] = {}
        for fld in _DIFF_FIELDS:
            va, vb = res_a.get(fld), res_b.get(fld)
            if va == vb:
                continue
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                deltas[fld] = {"a": va, "b": vb, "delta": vb - va}
            else:
                deltas[fld] = {"a": va, "b": vb}
        if deltas:
            diff.changed.append({**{k: v for k, v in zip(_DIFF_KEY, key)},
                                 "deltas": deltas})
        else:
            diff.unchanged += 1
    return diff


def render_diff(diff: RunDiff) -> str:
    """Human-readable summary of a :func:`diff_runs` result."""

    def label(rec_or_key: Dict[str, object]) -> str:
        parts = [str(rec_or_key["instance"]), str(rec_or_key["instance_type"]),
                 str(rec_or_key["engine"])]
        if rec_or_key.get("frontier"):
            parts.append(str(rec_or_key["frontier"]))
        bound = rec_or_key.get("bound") or "greedy"
        if bound != "greedy":
            parts.append(f"bound={bound}")
        if rec_or_key.get("repeat"):
            parts.append(f"r{rec_or_key['repeat']}")
        return "/".join(parts)

    lines = [
        f"diff {diff.run_a} -> {diff.run_b}: "
        f"{len(diff.added)} added, {len(diff.removed)} removed, "
        f"{len(diff.changed)} changed, {diff.unchanged} unchanged",
    ]
    for rec in diff.added:
        lines.append(f"  + {label(rec)}")
    for rec in diff.removed:
        lines.append(f"  - {label(rec)}")
    for cell in diff.changed:
        deltas = cell["deltas"]
        rendered = []
        for fld, info in deltas.items():
            if "delta" in info:
                rendered.append(f"{fld} {info['a']} -> {info['b']} "
                                f"({info['delta']:+g})")
            else:
                rendered.append(f"{fld} {info['a']} -> {info['b']}")
        lines.append(f"  ~ {label(cell)}: " + ", ".join(rendered))
    return "\n".join(lines)
