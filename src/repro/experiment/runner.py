"""Experiment runner: expand a spec, fan out, skip what already ran.

The runner turns an :class:`~repro.experiment.spec.ExperimentSpec` into
planned cells, resolves each instance once (graph construction, graph
fingerprint, exact minimum for the PVC columns), drops the cells whose
fingerprint already has a record in the run's ``results.jsonl`` (the
resume contract), and executes the remainder — inline, or fanned out
over a ``ProcessPoolExecutor``.

Every cell goes through :func:`repro.analysis.experiments.run_cell`,
i.e. the exact NodeStep × frontier × engine composition a direct
``repro solve`` / ``run_table1`` invocation uses — which is what lets
:mod:`repro.experiment.report` assert stored charge streams bit-identical
against live re-execution.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.experiments import ExperimentConfig, run_cell
from ..graph.csr import CSRGraph
from .spec import ExperimentSpec, InstanceRef, cell_fingerprint, graph_fingerprint
from .store import Run, RunStore

__all__ = [
    "InstanceInfo",
    "PlannedCell",
    "RunOutcome",
    "load_instance_graph",
    "experiment_config",
    "plan_run",
    "run_experiment",
]

#: Node guard for the one-off exact-minimum resolution of file instances.
_MINIMUM_NODE_GUARD = 150_000


# --------------------------------------------------------------------- #
# instance resolution
# --------------------------------------------------------------------- #
def load_instance_graph(ref: InstanceRef, scale: str) -> CSRGraph:
    """Build a suite instance or read an on-disk graph file by extension."""
    if ref.suite is not None:
        from ..graph.generators.suites import suite_instance

        return suite_instance(ref.suite, scale).graph()
    path = Path(ref.path)  # type: ignore[arg-type]
    suffix = path.suffix.lower()
    if suffix in (".col", ".clq", ".dimacs"):
        from ..graph.io.dimacs import read_dimacs

        return read_dimacs(path)
    if suffix in (".graph", ".metis"):
        from ..graph.io.metis import read_metis

        return read_metis(path)
    from ..graph.io.edgelist import read_edgelist

    return read_edgelist(path)[0]


def _resolve_minimum(ref: InstanceRef, graph: CSRGraph, scale: str) -> Tuple[Optional[int], str]:
    """Exact minimum cover size of an instance, and how we know it."""
    if ref.suite is not None:
        from ..analysis.experiments import resolve_minimum
        from ..graph.generators.suites import suite_instance

        return resolve_minimum(suite_instance(ref.suite, scale), scale)
    from ..core.matching import konig_cover
    from ..core.sequential import solve_mvc_sequential

    konig = konig_cover(graph)
    if konig is not None:
        return konig.size, "konig"
    out = solve_mvc_sequential(graph, node_budget=_MINIMUM_NODE_GUARD)
    if out.timed_out:
        return None, "unknown"
    return out.optimum, "search"


@dataclass
class InstanceInfo:
    """Per-instance metadata recorded in the run manifest."""

    label: str
    ref: object               # the spec's JSON form of the instance
    n: int
    m: int
    avg_degree: float
    graph_fp: str
    minimum: Optional[int]
    min_source: str

    def to_json(self) -> Dict[str, object]:
        return {
            "label": self.label, "ref": self.ref, "n": self.n, "m": self.m,
            "avg_degree": self.avg_degree, "graph_fp": self.graph_fp,
            "minimum": self.minimum, "min_source": self.min_source,
        }


@dataclass
class PlannedCell:
    """One executable cell with its resolved ``k`` and fingerprint."""

    instance: InstanceInfo
    engine: str
    frontier: Optional[str]
    bound: str
    instance_type: str
    k: Optional[int]
    repeat: int
    fingerprint: str
    workers: Optional[int] = None
    hosts: int = 0

    def identity(self) -> Dict[str, object]:
        """The record fields shared by results.jsonl and the index."""
        return {
            "fingerprint": self.fingerprint,
            "instance": self.instance.label,
            "engine": self.engine,
            "frontier": self.frontier,
            "bound": self.bound,
            "instance_type": self.instance_type,
            "k": self.k,
            "repeat": self.repeat,
            # non-default only: records from pre-axis stores stay valid
            **({"workers": self.workers} if self.workers is not None else {}),
            **({"hosts": self.hosts} if self.hosts else {}),
        }


@dataclass
class RunOutcome:
    """What one ``run_experiment`` invocation did."""

    run: Run
    planned: int
    executed: int
    skipped: int
    instances: List[InstanceInfo] = field(default_factory=list)
    #: cells whose every attempt failed this invocation; their ``error``
    #: records are in the store and a ``resume`` retries them.
    quarantined: int = 0


def experiment_config(spec: ExperimentSpec) -> ExperimentConfig:
    """The :class:`ExperimentConfig` every cell of this spec runs under."""
    from .spec import resolve_spec_device

    return ExperimentConfig(
        scale=spec.scale,
        device=resolve_spec_device(spec.device),
        virtual_budget_s=spec.virtual_budget_s,
        seq_node_guard=spec.seq_node_guard,
        engine_node_guard=spec.engine_node_guard,
        stackonly_depths=spec.stackonly_depths,
        hybrid_capacities=spec.hybrid_capacities,
        hybrid_fractions=spec.hybrid_fractions,
        cpu_workers=spec.cpu_workers,
        kernels=spec.kernels,
        telemetry=spec.telemetry,
        cache=spec.cache,
    )


# --------------------------------------------------------------------- #
# planning
# --------------------------------------------------------------------- #
def plan_run(spec: ExperimentSpec) -> Tuple[List[InstanceInfo], List[PlannedCell]]:
    """Resolve instances and expand the grid into fingerprinted cells.

    PVC cells whose ``k`` cannot be resolved (minimum unknown within the
    guard) or would be negative are dropped here — deterministically, so
    a resume plans the identical cell list.
    """
    from ..analysis.experiments import _k_for

    infos: Dict[InstanceRef, InstanceInfo] = {}
    for ref in spec.instances:
        graph = load_instance_graph(ref, spec.scale)
        minimum, min_source = _resolve_minimum(ref, graph, spec.scale)
        infos[ref] = InstanceInfo(
            label=ref.label, ref=ref.to_json(), n=graph.n, m=graph.m,
            avg_degree=graph.average_degree(),
            graph_fp=graph_fingerprint(graph),
            minimum=minimum, min_source=min_source,
        )

    planned: List[PlannedCell] = []
    config = spec.cell_config()
    for cell in spec.expand_cells():
        info = infos[cell.instance]
        if cell.instance_type == "mvc":
            k = None
        else:
            if info.minimum is None:
                continue  # the paper could not run these either
            k = _k_for(cell.instance_type, info.minimum)
            if k < 0:
                continue
        payload = {
            "instance": info.label,
            "engine": cell.engine,
            "frontier": cell.frontier,
            "instance_type": cell.instance_type,
            "k": k,
            "repeat": cell.repeat,
            "config": config,
        }
        if cell.bound != "greedy":
            # non-default only: default-bound cells fingerprint exactly
            # as they did before the axis existed, preserving resume of
            # pre-existing stores
            payload["bound"] = cell.bound
        if cell.workers is not None:
            # same contract as ``bound``: the axis unset (None — use the
            # ``cpu_workers`` scalar) fingerprints as before it existed
            payload["workers"] = cell.workers
        if cell.hosts:
            payload["hosts"] = cell.hosts
        planned.append(PlannedCell(
            instance=info, engine=cell.engine, frontier=cell.frontier,
            bound=cell.bound, instance_type=cell.instance_type, k=k,
            repeat=cell.repeat, workers=cell.workers, hosts=cell.hosts,
            fingerprint=cell_fingerprint(info.graph_fp, payload),
        ))
    return list(infos.values()), planned


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #
#: Per-process graph cache for pool workers (key: ref JSON × scale).
_GRAPH_CACHE: Dict[str, CSRGraph] = {}
_CALIBRATION_APPLIED: set = set()


def _cached_graph(ref_json: object, scale: str) -> CSRGraph:
    key = f"{ref_json!r}@{scale}"
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = load_instance_graph(InstanceRef.from_json(ref_json), scale)
        _GRAPH_CACHE[key] = graph
    return graph


def _maybe_apply_calibration(path: Optional[str]) -> None:
    if path is None or path in _CALIBRATION_APPLIED:
        return
    from ..analysis.microbench import load_kernel_calibration

    load_kernel_calibration(path)
    _CALIBRATION_APPLIED.add(path)


def _execute_cell(spec_dict: Dict[str, object], cell_fields: Dict[str, object],
                  ref_json: object) -> Dict[str, object]:
    """Worker entry point: rebuild the graph, run the cell, return the record.

    Top-level (picklable) on purpose; runs both inline and inside pool
    workers so the two paths cannot drift.
    """
    spec = ExperimentSpec.from_dict(spec_dict)
    _maybe_apply_calibration(spec.calibration)
    cfg = experiment_config(spec)
    graph = _cached_graph(ref_json, spec.scale)
    result = run_cell(
        cell_fields["engine"],  # type: ignore[arg-type]
        graph,
        cell_fields["instance_type"],  # type: ignore[arg-type]
        cell_fields["k"],  # type: ignore[arg-type]
        cfg,
        frontier=cell_fields["frontier"],  # type: ignore[arg-type]
        bound=cell_fields.get("bound", "greedy"),  # type: ignore[arg-type]
        workers=cell_fields.get("workers"),  # type: ignore[arg-type]
        hosts=cell_fields.get("hosts", 0),  # type: ignore[arg-type]
    )
    return {**cell_fields, "result": result.to_record()}


class _CellTimeout(RuntimeError):
    """A cell outlived ``cell_timeout_s`` and its process was terminated."""


def _cell_proc_entry(out_q, spec_dict, cell_fields, ref_json) -> None:
    """Child entry for timeout-guarded cells (SimpleQueue: durable put)."""
    try:
        out_q.put(("ok", _execute_cell(spec_dict, cell_fields, ref_json)))
    except Exception as exc:  # noqa: BLE001 - shipped back, not swallowed
        out_q.put(("err", f"{type(exc).__name__}: {exc}"))


def _execute_with_timeout(spec_dict, cell_fields, ref_json,
                          timeout_s: float) -> Dict[str, object]:
    """Run one cell in its own process, terminating it at the timeout."""
    ctx = mp.get_context("fork")
    out_q = ctx.SimpleQueue()
    proc = ctx.Process(target=_cell_proc_entry,
                       args=(out_q, spec_dict, cell_fields, ref_json),
                       daemon=True)
    proc.start()
    msg = None
    end = time.monotonic() + timeout_s
    try:
        while msg is None:
            if not out_q.empty():
                msg = out_q.get()
                break
            if not proc.is_alive():
                # died without reporting (or the result raced the check)
                msg = out_q.get() if not out_q.empty() else None
                if msg is None:
                    raise RuntimeError(
                        f"cell worker died with exit code {proc.exitcode}")
                break
            if time.monotonic() >= end:
                raise _CellTimeout(f"cell exceeded cell_timeout_s={timeout_s}")
            time.sleep(0.01)
    finally:
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
    status, payload = msg
    if status == "ok":
        return payload
    raise RuntimeError(payload)


def _execute_cell_guarded(
    spec_dict: Dict[str, object],
    cell_fields: Dict[str, object],
    ref_json: object,
    timeout_s: Optional[float],
    retries: int,
) -> Dict[str, object]:
    """Execute a cell under the spec's timeout/retry policy.

    Never raises for a cell-level failure: after ``retries + 1`` failed
    attempts the cell is *quarantined* — an ``error`` record with the
    full cell identity, which the store treats as "not completed", so a
    ``resume`` retries exactly these cells.
    """
    last_error: Optional[str] = None
    timed_out = False
    attempts = 0
    for attempts in range(1, retries + 2):
        try:
            if timeout_s is None:
                return _execute_cell(spec_dict, cell_fields, ref_json)
            return _execute_with_timeout(spec_dict, cell_fields, ref_json, timeout_s)
        except _CellTimeout as exc:
            last_error, timed_out = str(exc), True
        except Exception as exc:  # noqa: BLE001 - quarantine, don't kill the run
            last_error = f"{type(exc).__name__}: {exc}"
    return {
        **cell_fields,
        "error": {
            "type": "timeout" if timed_out else "exception",
            "message": (last_error or "unknown")[:500],
            "attempts": attempts,
        },
    }


def run_experiment(
    spec: ExperimentSpec,
    store: RunStore,
    *,
    n_workers: int = 0,
    resume: bool = True,
    run_id: Optional[str] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> RunOutcome:
    """Execute a spec against a store; skip fingerprint-matched cells.

    ``n_workers <= 1`` runs inline (deterministic order, no processes);
    larger values fan the pending cells out over a process pool.  With
    ``resume=False`` every planned cell re-executes and shadows its old
    record.  Returns the executed/skipped counts the resume tests (and
    the ``--smoke`` CI gate) assert on.

    A failing or ``cell_timeout_s``-exceeding cell never kills the run:
    after ``cell_retries`` extra attempts it is quarantined — an
    ``error`` record in the store — and the sweep continues; a later
    ``resume`` retries the quarantined cells.  ``KeyboardInterrupt``
    marks the run ``interrupted`` (completed records are already durable)
    and re-raises for the CLI to report the resume command.
    """
    spec.validate()
    say = echo if echo is not None else (lambda _msg: None)
    run = store.open_run(name=spec.name, spec=spec.to_dict(), run_id=run_id)
    t0 = time.perf_counter()
    infos, planned = plan_run(spec)
    run.update_manifest(
        n_cells=len(planned),
        instances=[info.to_json() for info in infos],
    )
    done = run.completed() if resume else {}
    pending = [cell for cell in planned if cell.fingerprint not in done]
    skipped = len(planned) - len(pending)
    say(f"{run.run_id}: {len(planned)} cells planned, {skipped} already "
        f"complete, {len(pending)} to run")

    spec_dict = spec.to_dict()
    quarantined = 0

    def note(cell: PlannedCell, record: Dict[str, object]) -> None:
        nonlocal quarantined
        label = (f"{cell.instance.label}/{cell.instance_type}/"
                 f"{cell.engine}{'/' + cell.frontier if cell.frontier else ''}"
                 f"{'/' + cell.bound if cell.bound != 'greedy' else ''}")
        if "error" in record:
            quarantined += 1
            say(f"  QUARANTINED {label}: {record['error']['message']}")  # type: ignore[index]
        else:
            say(f"  done {label}")

    try:
        if n_workers <= 1 or len(pending) <= 1:
            for cell in pending:
                record = _execute_cell_guarded(
                    spec_dict, cell.identity(), cell.instance.ref,
                    spec.cell_timeout_s, spec.cell_retries)
                run.append(record)
                note(cell, record)
        else:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = {
                    pool.submit(_execute_cell_guarded, spec_dict, cell.identity(),
                                cell.instance.ref, spec.cell_timeout_s,
                                spec.cell_retries): cell
                    for cell in pending
                }
                for future in as_completed(futures):
                    cell = futures[future]
                    record = future.result()
                    run.append(record)  # single-writer append
                    note(cell, record)
    except KeyboardInterrupt as exc:
        run.finish("interrupted")
        store.index_run(run)
        exc.run_id = run.run_id  # type: ignore[attr-defined]  # for the CLI
        raise
    run.finish("complete")
    store.index_run(run)
    say(f"{run.run_id}: executed {len(pending) - quarantined}, skipped "
        f"{skipped}, quarantined {quarantined} "
        f"[{time.perf_counter() - t0:.1f}s wall]")
    return RunOutcome(
        run=run, planned=len(planned), executed=len(pending) - quarantined,
        skipped=skipped, instances=infos, quarantined=quarantined,
    )
