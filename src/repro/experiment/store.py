"""Persistent, resumable experiment results store.

Layout (everything human-readable, everything machine-validated)::

    <store root>/
        index.sqlite                  # cross-run index: runs + cells tables
        <run_id>/
            manifest.json             # spec + hashes + provenance + status
            results.jsonl             # one completed cell per line, append-only
            report.md                 # regenerated paper tables (report.py)

``results.jsonl`` is the source of truth: it is appended (and flushed)
record-by-record, so a killed run loses at most the cell in flight.
Resume reads the surviving lines back as a ``fingerprint -> record`` map
and skips every matched cell; a truncated trailing line (the kill victim)
is ignored, and re-appending after it keeps the file valid.

The SQLite index is a *derived* artifact in the spirit of the
experimentation-layer exemplars: it is rebuilt offline from the run
directories (``repro experiment index``), never written mid-run, and
exists so cross-PR questions — "how did `p_hat_300_3` mvc cells move
across the last five runs?" — are one SQL query instead of a JSONL crawl.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "Run",
    "RunStore",
    "validate_manifest",
    "validate_cell_record",
]

#: Bump when manifest.json / results.jsonl layout changes
#: (documented in docs/EXPERIMENTS.md).
MANIFEST_SCHEMA_VERSION = 1

MANIFEST_KIND = "repro-vc-experiment-manifest"

_RESULT_REQUIRED = (
    "engine", "instance_type", "seconds", "timed_out", "nodes",
    "optimum", "feasible", "wall_seconds", "cycles",
)


def _fail(msg: str) -> None:
    raise ValueError(f"experiment artifact schema violation: {msg}")


def validate_manifest(manifest: Dict[str, object]) -> None:
    """Assert a run manifest matches the documented schema."""
    if not isinstance(manifest, dict):
        _fail("manifest is not an object")
    if manifest.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        _fail(f"manifest schema_version != {MANIFEST_SCHEMA_VERSION}")
    if manifest.get("kind") != MANIFEST_KIND:
        _fail(f"manifest kind != {MANIFEST_KIND!r}")
    for key in ("run_id", "name", "spec", "spec_hash", "status",
                "created_unix", "provenance"):
        if key not in manifest:
            _fail(f"manifest missing {key!r}")
    if not isinstance(manifest["spec"], dict):
        _fail("manifest spec is not an object")
    if manifest["status"] not in ("running", "complete", "interrupted"):
        _fail(f"manifest status {manifest['status']!r} unknown")
    prov = manifest["provenance"]
    if not isinstance(prov, dict):
        _fail("manifest provenance is not an object")
    for key in ("git_sha", "python", "numpy", "platform"):
        if key not in prov:
            _fail(f"manifest provenance missing {key!r}")


def validate_cell_record(record: Dict[str, object]) -> None:
    """Assert one results.jsonl record matches the documented schema.

    A record carries exactly one of ``result`` (a completed cell) or
    ``error`` (a quarantined cell: the runner gave up on it after its
    timeout/retry budget).  Quarantined records keep the full identity,
    so a resume re-plans exactly those cells.
    """
    if not isinstance(record, dict):
        _fail("cell record is not an object")
    for key in ("fingerprint", "instance", "engine", "frontier",
                "instance_type", "k", "repeat"):
        if key not in record:
            _fail(f"cell record missing {key!r}")
    # ``bound`` joined the record in PR 5; absent means the pre-bound-axis
    # default (``greedy``), so old stores stay readable.
    if "bound" in record and not isinstance(record["bound"], str):
        _fail("cell bound is not a string")
    if not isinstance(record["fingerprint"], str) or len(record["fingerprint"]) != 64:
        _fail("cell fingerprint is not a sha256 hex digest")
    if not isinstance(record["repeat"], int):
        _fail("cell repeat is not an integer")
    if ("result" in record) == ("error" in record):
        _fail("cell record must carry exactly one of 'result' or 'error'")
    if "error" in record:
        error = record["error"]
        if not isinstance(error, dict):
            _fail("cell error is not an object")
        for key in ("type", "message", "attempts"):
            if key not in error:
                _fail(f"cell error missing {key!r}")
        if not isinstance(error["attempts"], int) or error["attempts"] < 1:
            _fail("cell error attempts is not a positive integer")
        return
    result = record["result"]
    if not isinstance(result, dict):
        _fail("cell result is not an object")
    for key in _RESULT_REQUIRED:
        if key not in result:
            _fail(f"cell result missing {key!r}")
    if result["seconds"] is not None and not isinstance(result["seconds"], (int, float)):
        _fail("cell result seconds is neither null nor a number")
    if not isinstance(result["timed_out"], bool):
        _fail("cell result timed_out is not a boolean")
    if not isinstance(result["nodes"], int) or result["nodes"] < 0:
        _fail("cell result nodes is not a non-negative integer")
    # ``obs`` joined the result in PR 9 (telemetry-enabled specs only);
    # absent means the cell ran without telemetry, so old stores stay
    # readable and new ones stay readable by old code.
    if "obs" in result and not isinstance(result["obs"], dict):
        _fail("cell result obs is not an object")


def _provenance() -> Dict[str, object]:
    import platform
    import sys

    import numpy as np

    from ..analysis.microbench import _git_sha

    return {
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


class Run:
    """Handle on one run directory; owns its three artifacts."""

    def __init__(self, store: "RunStore", run_id: str):
        self.store = store
        self.run_id = run_id
        self.directory = store.root / run_id
        self.manifest_path = self.directory / "manifest.json"
        self.results_path = self.directory / "results.jsonl"
        self.report_path = self.directory / "report.md"
        self._manifest: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    @property
    def manifest(self) -> Dict[str, object]:
        if self._manifest is None:
            self._manifest = json.loads(self.manifest_path.read_text())
        return self._manifest

    def _write_manifest(self, manifest: Dict[str, object]) -> None:
        validate_manifest(manifest)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        tmp.replace(self.manifest_path)  # atomic: a kill never truncates it
        self._manifest = manifest

    def update_manifest(self, **fields: object) -> None:
        manifest = dict(self.manifest)
        manifest.update(fields)
        self._write_manifest(manifest)

    def finish(self, status: str) -> None:
        self.update_manifest(status=status, finished_unix=time.time())

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def _records(self) -> Dict[str, Dict[str, object]]:
        """``fingerprint -> latest intact record`` (completed or error).

        A line that fails to parse (the torn tail of a killed run) is
        skipped; later records for the same fingerprint win, so a
        forced re-run simply shadows the stale record.
        """
        latest: Dict[str, Dict[str, object]] = {}
        if not self.results_path.exists():
            return latest
        with self.results_path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    validate_cell_record(record)
                except ValueError:
                    continue  # torn write: the record was never completed
                latest[record["fingerprint"]] = record
        return latest

    def completed(self) -> Dict[str, Dict[str, object]]:
        """``fingerprint -> record`` for every *successfully* completed cell.

        Quarantined (``error``) records are excluded on purpose: resume
        treats them as never run, so the quarantined cells retry.
        """
        return {fp: rec for fp, rec in self._records().items() if "result" in rec}

    def quarantined(self) -> Dict[str, Dict[str, object]]:
        """``fingerprint -> record`` for cells whose latest attempt failed."""
        return {fp: rec for fp, rec in self._records().items() if "error" in rec}

    def append(self, record: Dict[str, object]) -> None:
        """Validate and durably append one completed cell.

        If the file's last byte is not a newline — the signature of a
        write torn by a kill — the torn line is terminated first, so the
        new record never concatenates onto the corpse (which would
        corrupt *two* records instead of zero).
        """
        validate_cell_record(record)
        torn_tail = False
        if self.results_path.exists() and self.results_path.stat().st_size > 0:
            with self.results_path.open("rb") as fh:
                fh.seek(-1, 2)
                torn_tail = fh.read(1) != b"\n"
        with self.results_path.open("a") as fh:
            if torn_tail:
                fh.write("\n")
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()

    def write_report(self, text: str) -> Path:
        self.report_path.write_text(text)
        return self.report_path


class RunStore:
    """A directory of runs plus the cross-run SQLite index."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / "index.sqlite"

    # ------------------------------------------------------------------ #
    # runs
    # ------------------------------------------------------------------ #
    def open_run(
        self,
        *,
        name: str,
        spec: Dict[str, object],
        run_id: Optional[str] = None,
    ) -> Run:
        """Create the run for ``spec`` — or reopen it for resume.

        The run id derives from the spec hash, so an unchanged spec maps
        to the same directory and its completed cells; any spec edit
        yields a fresh run.  Reopening flips the status back to
        ``running`` (the resume path) but never touches results.
        """
        from .spec import spec_hash

        digest = spec_hash(spec)
        if run_id is None:
            run_id = f"{name}-{digest[:10]}"
        run = Run(self, run_id)
        if run.manifest_path.exists():
            if run.manifest["spec_hash"] != digest:
                raise ValueError(
                    f"run {run_id!r} exists with a different spec "
                    f"(stored {run.manifest['spec_hash'][:10]}, requested {digest[:10]}); "
                    "rename the experiment or remove the stale run directory"
                )
            run.update_manifest(status="running")
            return run
        run.directory.mkdir(parents=True, exist_ok=True)
        run._write_manifest({
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "kind": MANIFEST_KIND,
            "run_id": run_id,
            "name": name,
            "spec": spec,
            "spec_hash": digest,
            "status": "running",
            "created_unix": time.time(),
            "provenance": _provenance(),
        })
        return run

    def get_run(self, run_id: str) -> Run:
        """An existing run by id (raises ``KeyError`` with the known ids)."""
        run = Run(self, run_id)
        if not run.manifest_path.exists():
            known = sorted(r.run_id for r in self.runs())
            raise KeyError(
                f"no run {run_id!r} under {self.root}; "
                f"known runs: {', '.join(known) if known else '(none)'}"
            )
        return run

    def runs(self) -> List[Run]:
        """Every run directory with an intact manifest, sorted by id."""
        found = []
        for path in sorted(self.root.iterdir()) if self.root.is_dir() else []:
            if path.is_dir() and (path / "manifest.json").exists():
                found.append(Run(self, path.name))
        return found

    # ------------------------------------------------------------------ #
    # SQLite index
    # ------------------------------------------------------------------ #
    def connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.index_path)
        conn.execute(
            "CREATE TABLE IF NOT EXISTS runs ("
            " run_id TEXT PRIMARY KEY, name TEXT, spec_hash TEXT,"
            " status TEXT, created_unix REAL, git_sha TEXT,"
            " n_cells INTEGER, n_done INTEGER)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS cells ("
            " run_id TEXT, fingerprint TEXT, instance TEXT, engine TEXT,"
            " frontier TEXT, bound TEXT, instance_type TEXT, repeat INTEGER,"
            " seconds REAL, timed_out INTEGER, nodes INTEGER,"
            " optimum INTEGER, cycles REAL, wall_seconds REAL, record TEXT,"
            " status TEXT,"
            " PRIMARY KEY (run_id, fingerprint))"
        )
        # Older index files lack later columns; the index is derived, so
        # migrate in place (values backfill on the next reindex).
        columns = {row[1] for row in conn.execute("PRAGMA table_info(cells)")}
        if "bound" not in columns:  # pragma: no cover - legacy index file
            conn.execute("ALTER TABLE cells ADD COLUMN bound TEXT")
        if "status" not in columns:  # pragma: no cover - legacy index file
            conn.execute("ALTER TABLE cells ADD COLUMN status TEXT")
        return conn

    def index_run(self, run: Run) -> int:
        """(Re)index one run from its on-disk artifacts; return ok-cell count.

        Quarantined cells are indexed too (``status='error'``, null result
        columns) so "what failed across runs" is a one-liner; only the
        completed cells count toward ``n_done``.
        """
        manifest = run.manifest
        all_records = list(run._records().values())
        n_ok = sum(1 for rec in all_records if "result" in rec)
        with self.connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO runs VALUES (?,?,?,?,?,?,?,?)",
                (
                    run.run_id,
                    manifest["name"],
                    manifest["spec_hash"],
                    manifest["status"],
                    manifest["created_unix"],
                    manifest["provenance"]["git_sha"],  # type: ignore[index]
                    manifest.get("n_cells"),
                    n_ok,
                ),
            )
            conn.execute("DELETE FROM cells WHERE run_id = ?", (run.run_id,))
            def _row(rec: Dict[str, object]):
                result = rec.get("result")
                ok = isinstance(result, dict)
                return (
                    run.run_id,
                    rec["fingerprint"],
                    rec["instance"],
                    rec["engine"],
                    rec["frontier"],
                    rec.get("bound", "greedy"),
                    rec["instance_type"],
                    rec["repeat"],
                    result["seconds"] if ok else None,  # type: ignore[index]
                    int(bool(result["timed_out"])) if ok else None,  # type: ignore[index]
                    result["nodes"] if ok else None,  # type: ignore[index]
                    result["optimum"] if ok else None,  # type: ignore[index]
                    result["cycles"] if ok else None,  # type: ignore[index]
                    result["wall_seconds"] if ok else None,  # type: ignore[index]
                    json.dumps(rec, sort_keys=True),
                    "ok" if ok else "error",
                )
            conn.executemany(
                "INSERT INTO cells (run_id, fingerprint, instance, engine,"
                " frontier, bound, instance_type, repeat, seconds, timed_out,"
                " nodes, optimum, cycles, wall_seconds, record, status)"
                " VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                [_row(rec) for rec in all_records],
            )
        return n_ok

    def reindex(self) -> Dict[str, int]:
        """Rebuild the whole index offline from the run directories."""
        counts = {}
        for run in self.runs():
            counts[run.run_id] = self.index_run(run)
        return counts

    def query_cells(
        self,
        *,
        run_id: Optional[str] = None,
        instance: Optional[str] = None,
        engine: Optional[str] = None,
        instance_type: Optional[str] = None,
        bound: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Full cell records matching the filters, across runs."""
        clauses, params = [], []
        for column, value in (("run_id", run_id), ("instance", instance),
                              ("engine", engine), ("instance_type", instance_type),
                              ("bound", bound), ("status", status)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = "SELECT record FROM cells"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY run_id, instance, engine, instance_type, repeat"
        with self.connect() as conn:
            rows = conn.execute(sql, params).fetchall()
        return [json.loads(row[0]) for row in rows]
