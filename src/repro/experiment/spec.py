"""Declarative experiment specs: the grid an experiment runs over.

An :class:`ExperimentSpec` is a plain JSON-able description of a
cartesian experiment — engines × frontier policies × bound policies ×
instances × instance types × repeats, plus the shared budgets and
engine parameter grids — validated against the live registries
(``ENGINES`` from :mod:`repro.core.solver`, ``FRONTIERS`` from
:mod:`repro.core.frontier`, ``BOUNDS`` from :mod:`repro.core.bounds`,
the evaluation suite, the Table I instance types), so a typo fails at
spec load with a one-line error naming the legal values, not half-way
through a sweep.

Two engine families are selectable: the virtually priced engines
(:data:`EXPERIMENT_ENGINES` — sequential + the simulated-GPU programs,
reporting virtual ``seconds``/``cycles``) and the real ``cpu-*`` teams
(:data:`WALL_CLOCK_ENGINES`), which run in *wall-clock mode*: their
cells store ``wall_seconds`` (and null virtual ``seconds``/``cycles``),
and live verification compares only their deterministic fields.

Identity is content-addressed at two levels:

* :func:`spec_hash` — SHA-256 over the spec's canonical JSON; the run id
  of a spec's run directory is derived from it, which is what makes
  ``repro experiment run`` on an unchanged spec a *resume*.
* :func:`cell_fingerprint` — SHA-256 over one cell's payload (instance,
  engine, frontier, type, k, repeat, config) combined with
  :func:`graph_fingerprint` (SHA-256 over the instance's CSR arrays).
  A completed cell is skipped on re-run iff its fingerprint matches,
  so editing the spec — or the graph generator — invalidates exactly
  the cells whose results could change.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "EXPERIMENT_ENGINES",
    "WALL_CLOCK_ENGINES",
    "InstanceRef",
    "CellSpec",
    "ExperimentSpec",
    "load_spec",
    "spec_hash",
    "canonical_json",
    "graph_fingerprint",
    "cell_fingerprint",
]

#: Bump when the spec layout changes (documented in docs/EXPERIMENTS.md).
SPEC_SCHEMA_VERSION = 1

#: Engines the experiment layer can price in virtual seconds — the
#: sequential baseline plus the simulated-GPU engines.
EXPERIMENT_ENGINES: Tuple[str, ...] = ("sequential", "stackonly", "hybrid", "globalonly")

#: The real CPU teams, runnable in wall-clock mode: their cells carry
#: ``wall_seconds`` only (virtual ``seconds``/``cycles`` stay null) and
#: they never join the Table I virtual-seconds columns.
WALL_CLOCK_ENGINES: Tuple[str, ...] = ("cpu-threads", "cpu-process",
                                       "cpu-worksteal", "distributed")

#: Simulated devices selectable from a spec.
SPEC_DEVICES: Tuple[str, ...] = ("SmallSim", "TinySim")


def resolve_spec_device(name: str):
    """The :class:`~repro.sim.device.DeviceSpec` behind a spec device name."""
    from ..sim.device import SMALL_SIM, TINY_SIM

    return {"SmallSim": SMALL_SIM, "TinySim": TINY_SIM}[name]


def _one_line_choice_error(kind: str, got: object, choices: Sequence[str]) -> ValueError:
    return ValueError(f"unknown {kind} {got!r}; choose from: {', '.join(choices)}")


@dataclass(frozen=True)
class InstanceRef:
    """One evaluation instance: a suite member or an on-disk graph file."""

    suite: Optional[str] = None   # suite instance name (resolved at spec scale)
    path: Optional[str] = None    # metis/.graph, dimacs/.col/.clq, else edge list

    def __post_init__(self) -> None:
        if (self.suite is None) == (self.path is None):
            raise ValueError(
                "instance must be exactly one of a suite name or {'path': ...}: "
                f"got suite={self.suite!r} path={self.path!r}"
            )

    @property
    def label(self) -> str:
        return self.suite if self.suite is not None else Path(self.path).stem  # type: ignore[arg-type]

    def to_json(self) -> object:
        return self.suite if self.suite is not None else {"path": self.path}

    @classmethod
    def from_json(cls, obj: object) -> "InstanceRef":
        if isinstance(obj, str):
            return cls(suite=obj)
        if isinstance(obj, dict) and set(obj) == {"path"}:
            return cls(path=str(obj["path"]))
        raise ValueError(
            f"instance must be a suite name or {{'path': ...}}, got {obj!r}"
        )


@dataclass(frozen=True)
class CellSpec:
    """One expanded grid cell (k still unresolved: it needs the optimum)."""

    instance: InstanceRef
    engine: str
    frontier: Optional[str]   # sequential engine only; None otherwise
    bound: str                # BOUNDS registry name (every engine)
    instance_type: str
    repeat: int
    #: wall-clock engines only; ``None`` means the spec's ``cpu_workers``
    #: scalar (the pre-axis behaviour, kept for fingerprint stability).
    workers: Optional[int] = None
    #: distributed engine only: extra localhost ``serve-worker`` processes.
    hosts: int = 0


@dataclass
class ExperimentSpec:
    """A declarative experiment: axes, budgets and engine parameter grids."""

    name: str
    scale: str = "tiny"
    device: str = "SmallSim"
    instances: List[InstanceRef] = field(default_factory=list)
    engines: Tuple[str, ...] = ("sequential", "hybrid")
    #: frontier axis; pairs with the sequential engine only.
    frontiers: Tuple[str, ...] = ("lifo",)
    #: bound-policy axis; pairs with *every* engine (BOUNDS registry).
    bounds: Tuple[str, ...] = ("greedy",)
    instance_types: Tuple[str, ...] = ("mvc",)
    repeats: int = 1
    seed: int = 0
    virtual_budget_s: float = 0.01
    seq_node_guard: int = 4000
    engine_node_guard: int = 2500
    stackonly_depths: Tuple[int, ...] = (4,)
    hybrid_capacities: Tuple[int, ...] = (256,)
    hybrid_fractions: Tuple[float, ...] = (0.25,)
    #: worker-team width for the wall-clock ``cpu-*`` engines.
    cpu_workers: int = 2
    #: worker-count *axis* for the wall-clock engines: one cell per value.
    #: Empty means "just ``cpu_workers``" — the pre-axis behaviour, and
    #: the one that keeps old stores' fingerprints resumable.
    workers: Tuple[int, ...] = ()
    #: distributed engine only: axis of extra localhost ``serve-worker``
    #: processes joined over the socket transport (0 = none).
    hosts: Tuple[int, ...] = (0,)
    #: optional CALIBRATION.json applied in every worker before solving —
    #: calibration moves the scalar/vectorized dispatch, never results, so
    #: it is excluded from cell fingerprints.
    calibration: Optional[str] = None
    #: optional KERNELS registry name forced on the wall-clock ``cpu-*``
    #: engines (``None``: the process default dispatcher).  Backends are
    #: bit-identical by contract, so — like ``calibration`` — this is
    #: excluded from cell fingerprints.
    kernels: Optional[str] = None
    #: wall-clock guard per cell: a cell that exceeds it is terminated and
    #: (after ``cell_retries``) quarantined with an ``error`` record.
    #: ``None`` disables the guard.  Execution policy, not result content —
    #: excluded from fingerprints, so tightening it never invalidates cells.
    cell_timeout_s: Optional[float] = None
    #: arm the telemetry plane per cell and persist an ``obs`` snapshot
    #: (sim cells: predicted cycles by activity kind; wall cells: measured
    #: wall seconds by kind) for the report's predicted-vs-measured table.
    #: Observation, not result content — excluded from fingerprints, like
    #: ``calibration``/``kernels``, so toggling it never invalidates cells.
    telemetry: bool = False
    #: optional solve-cache store path armed inside wall-clock cells.  A
    #: cache hit returns the stored, verified certificate — same optimum
    #: and cover as the cold solve — so this is execution policy, not
    #: result content, and is excluded from cell fingerprints like
    #: ``calibration``/``kernels``.  Sim-priced cells ignore it: their
    #: output is a predicted cycle count, which a cache would falsify.
    cache: Optional[str] = None
    #: extra attempts before a failing/timing-out cell is quarantined.
    cell_retries: int = 0

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "ExperimentSpec":
        """Check every axis against the live registries; return self."""
        from ..core.bounds import BOUNDS
        from ..core.frontier import FRONTIERS
        from ..graph.generators.suites import SCALES, paper_suite

        if not self.name or not str(self.name).replace("-", "").replace("_", "").isalnum():
            raise ValueError(
                f"experiment name must be non-empty [-_ alphanumeric], got {self.name!r}"
            )
        if self.scale not in SCALES:
            raise _one_line_choice_error("scale", self.scale, SCALES)
        if self.device not in SPEC_DEVICES:
            raise _one_line_choice_error("device", self.device, SPEC_DEVICES)
        if not self.instances:
            raise ValueError("spec declares no instances")
        suite_names = {inst.name for inst in paper_suite(self.scale)}
        for ref in self.instances:
            if ref.suite is not None and ref.suite not in suite_names:
                raise _one_line_choice_error(
                    "suite instance", ref.suite, sorted(suite_names))
            if ref.path is not None and not Path(ref.path).is_file():
                raise ValueError(f"instance file does not exist: {ref.path}")
        if not self.engines:
            raise ValueError("spec declares no engines")
        legal_engines = EXPERIMENT_ENGINES + WALL_CLOCK_ENGINES
        for engine in self.engines:
            if engine not in legal_engines:
                raise _one_line_choice_error("engine", engine, legal_engines)
        if not self.frontiers:
            raise ValueError("spec declares no frontiers (use ['lifo'] for the default)")
        for frontier in self.frontiers:
            if frontier not in FRONTIERS:
                raise _one_line_choice_error("frontier", frontier, sorted(FRONTIERS))
        if not self.bounds:
            raise ValueError("spec declares no bounds (use ['greedy'] for the default)")
        for bound in self.bounds:
            if bound not in BOUNDS:
                raise _one_line_choice_error("bound", bound, sorted(BOUNDS))
        if self.cpu_workers < 1:
            raise ValueError("cpu_workers must be >= 1")
        for w in self.workers:
            if w < 1:
                raise ValueError("workers axis values must be >= 1")
        if self.workers and not any(e in WALL_CLOCK_ENGINES for e in self.engines):
            raise ValueError(
                "the workers axis applies to the wall-clock engines "
                f"({', '.join(WALL_CLOCK_ENGINES)}) and none is in the spec")
        for h in self.hosts:
            if h < 0:
                raise ValueError("hosts axis values must be >= 0")
        if not self.hosts:
            raise ValueError("hosts axis must not be empty (use [0] for none)")
        if tuple(self.hosts) != (0,) and "distributed" not in self.engines:
            raise ValueError(
                "the hosts axis applies to engine 'distributed' only, "
                "which is not in the spec")
        if self.kernels is not None:
            from ..core.kernel_backends import KERNELS

            if self.kernels not in KERNELS:
                raise _one_line_choice_error("kernels", self.kernels,
                                             sorted(KERNELS))
        from ..analysis.experiments import INSTANCE_TYPES

        for itype in self.instance_types:
            if itype not in INSTANCE_TYPES:
                raise _one_line_choice_error("instance type", itype, INSTANCE_TYPES)
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.virtual_budget_s <= 0:
            raise ValueError("virtual_budget_s must be positive")
        if self.seq_node_guard < 1 or self.engine_node_guard < 1:
            raise ValueError("node guards must be positive")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive when given")
        if self.cache is not None and not str(self.cache):
            raise ValueError("cache must be a non-empty store path when given")
        if self.cell_retries < 0:
            raise ValueError("cell_retries must be >= 0")
        return self

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        # Fields added after schema v1 shipped (``bounds``, ``cpu_workers``)
        # are omitted at their defaults: a spec that does not use them
        # serializes — and therefore spec-hashes — exactly as it did
        # before the axis existed, so pre-existing runs keep their ids
        # and resume instead of erroring on a changed hash.
        extras: Dict[str, object] = {}
        if tuple(self.bounds) != ("greedy",):
            extras["bounds"] = list(self.bounds)
        if self.cpu_workers != 2:
            extras["cpu_workers"] = self.cpu_workers
        if self.workers:
            extras["workers"] = list(self.workers)
        if tuple(self.hosts) != (0,):
            extras["hosts"] = list(self.hosts)
        if self.cell_timeout_s is not None:
            extras["cell_timeout_s"] = self.cell_timeout_s
        if self.cell_retries != 0:
            extras["cell_retries"] = self.cell_retries
        if self.kernels is not None:
            extras["kernels"] = self.kernels
        if self.telemetry:
            extras["telemetry"] = True
        if self.cache is not None:
            extras["cache"] = self.cache
        return {
            **extras,
            "schema_version": SPEC_SCHEMA_VERSION,
            "kind": "repro-vc-experiment-spec",
            "name": self.name,
            "scale": self.scale,
            "device": self.device,
            "instances": [ref.to_json() for ref in self.instances],
            "engines": list(self.engines),
            "frontiers": list(self.frontiers),
            "instance_types": list(self.instance_types),
            "repeats": self.repeats,
            "seed": self.seed,
            "virtual_budget_s": self.virtual_budget_s,
            "seq_node_guard": self.seq_node_guard,
            "engine_node_guard": self.engine_node_guard,
            "stackonly_depths": list(self.stackonly_depths),
            "hybrid_capacities": list(self.hybrid_capacities),
            "hybrid_fractions": list(self.hybrid_fractions),
            "calibration": self.calibration,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentSpec":
        if not isinstance(data, dict):
            raise ValueError("experiment spec must be a JSON object")
        version = data.get("schema_version", SPEC_SCHEMA_VERSION)
        if version != SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported spec schema_version {version!r} (expected {SPEC_SCHEMA_VERSION})"
            )
        known = {
            "schema_version", "kind", "name", "scale", "device", "instances",
            "engines", "frontiers", "bounds", "instance_types", "repeats",
            "seed", "virtual_budget_s", "seq_node_guard", "engine_node_guard",
            "stackonly_depths", "hybrid_capacities", "hybrid_fractions",
            "cpu_workers", "workers", "hosts", "calibration", "kernels",
            "cell_timeout_s", "cell_retries", "telemetry", "cache",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown spec fields: {unknown}")
        if "name" not in data:
            raise ValueError("spec is missing the required 'name' field")
        if "instances" not in data:
            raise ValueError("spec is missing the required 'instances' field")
        defaults = cls(name="x")
        spec = cls(
            name=str(data["name"]),
            scale=str(data.get("scale", defaults.scale)),
            device=str(data.get("device", defaults.device)),
            instances=[InstanceRef.from_json(obj) for obj in data["instances"]],  # type: ignore[union-attr]
            engines=tuple(data.get("engines", defaults.engines)),  # type: ignore[arg-type]
            frontiers=tuple(data.get("frontiers", defaults.frontiers)),  # type: ignore[arg-type]
            bounds=tuple(data.get("bounds", defaults.bounds)),  # type: ignore[arg-type]
            instance_types=tuple(data.get("instance_types", defaults.instance_types)),  # type: ignore[arg-type]
            repeats=int(data.get("repeats", defaults.repeats)),  # type: ignore[arg-type]
            seed=int(data.get("seed", defaults.seed)),  # type: ignore[arg-type]
            virtual_budget_s=float(data.get("virtual_budget_s", defaults.virtual_budget_s)),  # type: ignore[arg-type]
            seq_node_guard=int(data.get("seq_node_guard", defaults.seq_node_guard)),  # type: ignore[arg-type]
            engine_node_guard=int(data.get("engine_node_guard", defaults.engine_node_guard)),  # type: ignore[arg-type]
            stackonly_depths=tuple(data.get("stackonly_depths", defaults.stackonly_depths)),  # type: ignore[arg-type]
            hybrid_capacities=tuple(data.get("hybrid_capacities", defaults.hybrid_capacities)),  # type: ignore[arg-type]
            hybrid_fractions=tuple(data.get("hybrid_fractions", defaults.hybrid_fractions)),  # type: ignore[arg-type]
            cpu_workers=int(data.get("cpu_workers", defaults.cpu_workers)),  # type: ignore[arg-type]
            workers=tuple(int(w) for w in data.get("workers", ())),  # type: ignore[union-attr]
            hosts=tuple(int(h) for h in data.get("hosts", defaults.hosts)),  # type: ignore[union-attr]
            calibration=data.get("calibration"),  # type: ignore[arg-type]
            kernels=data.get("kernels"),  # type: ignore[arg-type]
            cell_timeout_s=(None if data.get("cell_timeout_s") is None
                            else float(data["cell_timeout_s"])),  # type: ignore[arg-type]
            cell_retries=int(data.get("cell_retries", defaults.cell_retries)),  # type: ignore[arg-type]
            telemetry=bool(data.get("telemetry", False)),
            cache=(None if data.get("cache") is None else str(data["cache"])),
        )
        return spec.validate()

    # ------------------------------------------------------------------ #
    # grid expansion
    # ------------------------------------------------------------------ #
    def expand_cells(self) -> List[CellSpec]:
        """The cartesian grid, in deterministic order.

        The frontier axis pairs with the sequential engine only: the
        parallel engines' worklist disciplines are fixed by what they
        model, so giving them a frontier would misreport the scenario
        (same contract as ``repro solve --frontier``).  The bound axis
        pairs with every engine — pruning strength is a property of the
        shared node step, not of any one traversal discipline.
        """
        cells: List[CellSpec] = []
        for ref in self.instances:
            for itype in self.instance_types:
                for engine in self.engines:
                    frontiers: Sequence[Optional[str]]
                    frontiers = self.frontiers if engine == "sequential" else (None,)
                    # The workers axis pairs with the wall-clock engines
                    # only, and the hosts axis with ``distributed`` only
                    # — other engines have no worker pool / no socket.
                    workers_axis: Sequence[Optional[int]]
                    workers_axis = (tuple(self.workers) or (None,)
                                    if engine in WALL_CLOCK_ENGINES else (None,))
                    hosts_axis = (tuple(self.hosts)
                                  if engine == "distributed" else (0,))
                    for frontier in frontiers:
                        for bound in self.bounds:
                            for workers in workers_axis:
                                for hosts in hosts_axis:
                                    for repeat in range(self.repeats):
                                        cells.append(CellSpec(
                                            instance=ref, engine=engine,
                                            frontier=frontier, bound=bound,
                                            instance_type=itype, repeat=repeat,
                                            workers=workers, hosts=hosts,
                                        ))
        return cells

    def cell_config(self) -> Dict[str, object]:
        """The config sub-dict hashed into every cell fingerprint.

        Everything that can change a cell's *result* — budgets, device,
        parameter grids, seed — and nothing that cannot (``name``,
        ``calibration``, ``kernels``: proven speed-only, backends are
        bit-identical).  The device is hashed by its
        full parameters, not its preset name, so re-tuning a preset in
        code invalidates the cells it priced.
        """
        from dataclasses import asdict

        return {
            "scale": self.scale,
            "device": asdict(resolve_spec_device(self.device)),
            "virtual_budget_s": self.virtual_budget_s,
            "seq_node_guard": self.seq_node_guard,
            "engine_node_guard": self.engine_node_guard,
            "stackonly_depths": list(self.stackonly_depths),
            "hybrid_capacities": list(self.hybrid_capacities),
            "hybrid_fractions": list(self.hybrid_fractions),
            # non-default only: a spec not using the wall-clock engines
            # fingerprints exactly as before the knob existed
            **({"cpu_workers": self.cpu_workers} if self.cpu_workers != 2 else {}),
            "seed": self.seed,
        }


def load_spec(source: Union[str, Path, Dict[str, object]]) -> ExperimentSpec:
    """Load and validate a spec from a JSON file path or an in-memory dict."""
    if isinstance(source, dict):
        return ExperimentSpec.from_dict(source)
    text = Path(source).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{source}: not valid JSON ({exc})") from None
    return ExperimentSpec.from_dict(data)


# --------------------------------------------------------------------- #
# content-addressed identity
# --------------------------------------------------------------------- #
def canonical_json(obj: object) -> str:
    """Stable JSON text: sorted keys, no whitespace drift."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_hash(spec: Union[ExperimentSpec, Dict[str, object]]) -> str:
    """SHA-256 of a spec's canonical JSON (hex)."""
    data = spec.to_dict() if isinstance(spec, ExperimentSpec) else spec
    return hashlib.sha256(canonical_json(data).encode()).hexdigest()


def graph_fingerprint(graph) -> str:
    """SHA-256 over a CSR graph's defining arrays (hex).

    Hashes ``n``, ``m`` and the ``indptr``/``indices`` arrays in a
    dtype-normalized (int64, little-endian) form, so the fingerprint is
    a property of the graph, not of how it was constructed.
    """
    h = hashlib.sha256()
    h.update(f"csr:{graph.n}:{graph.m}:".encode())
    h.update(np.ascontiguousarray(graph.indptr, dtype="<i8").tobytes())
    h.update(np.ascontiguousarray(graph.indices, dtype="<i8").tobytes())
    return h.hexdigest()


def cell_fingerprint(graph_fp: str, payload: Dict[str, object]) -> str:
    """SHA-256 identity of one cell: graph hash × configuration hash.

    ``payload`` is the cell's identity dict (instance label, engine,
    frontier, bound, instance type, k, repeat, config).  Matching fingerprints
    mean "this exact solve already happened" — the resume contract.
    """
    body = canonical_json({"graph": graph_fp, **payload})
    return hashlib.sha256(body.encode()).hexdigest()
