"""Predicted-vs-measured activity breakdowns.

The sim engines price every charge into the Fig. 6 activity kinds
(:mod:`repro.sim.costmodel`); the wall engines, instrumented through the
telemetry plane, attribute real seconds to a coarser taxonomy (reduce /
bound / branch / work-distribution).  This module maps both onto the
paper's four activity *groups* so a store report can lay the simulator's
prediction next to a measured wall-clock breakdown for the same
instance — the reproduction artifact ISSUE 9 is after.

Measured attribution sources, in preference order:

1. ``wall_by_kind`` — per-kind seconds accumulated by the instrumented
   :class:`~repro.core.nodestep.NodeStep` closure into
   ``repro_wall_seconds_total{kind=}`` counters (workers fold theirs
   into the comms dict as ``obs_<kind>_s``, which
   ``CommStats.totals()`` sums home for free);
2. spans — self-time attribution over a drained trace
   (:func:`wall_by_kind_from_spans`), used by ``repro obs view`` on a
   trace file where no registry snapshot exists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from . import metrics as _metrics
from .trace import WallSpan

__all__ = [
    "WALL_KINDS",
    "GROUP_TITLES",
    "SIM_GROUPS",
    "sim_groups",
    "WALL_GROUPS",
    "step_attribution",
    "add_wall",
    "wall_by_kind",
    "wall_obs_keys",
    "wall_from_obs_keys",
    "wall_by_kind_from_spans",
    "group_fractions",
    "render_breakdown_table",
]

#: The measured (wall) attribution kinds.  ``reduce``/``bound``/``branch``
#: are carved out of each node step by the instrumented closure; the rest
#: are engine-level work-distribution sites.
WALL_KINDS = ("reduce", "bound", "branch",
              "lease", "idle", "steal", "donate", "frame")

GROUP_TITLES = ("Work distribution and load balancing", "Reducing",
                "Branching", "Bounding")

#: Fig. 6 kind → group for the predicted (simulated-cycles) side, built
#: lazily from :mod:`repro.sim.costmodel` — ``repro.obs`` is imported by
#: ``core.nodestep``, which ``repro.sim`` builds on, so an eager import
#: here would close a cycle.  ``state_copy`` is folded into work
#: distribution: copying the degree array is part of moving a tree node
#: between frontier slots.  Access as ``breakdown.SIM_GROUPS`` (module
#: ``__getattr__``) or :func:`sim_groups`.
_SIM_GROUPS_CACHE: Optional[Dict[str, tuple]] = None


def sim_groups() -> Dict[str, tuple]:
    global _SIM_GROUPS_CACHE
    if _SIM_GROUPS_CACHE is None:
        from ..sim.costmodel import (BOUND_KINDS, BRANCH_KINDS, REDUCE_KINDS,
                                     WORK_DISTRIBUTION_KINDS)
        _SIM_GROUPS_CACHE = {
            "Work distribution and load balancing":
                WORK_DISTRIBUTION_KINDS + ("state_copy",),
            "Reducing": REDUCE_KINDS,
            "Branching": BRANCH_KINDS,
            "Bounding": BOUND_KINDS,
        }
    return _SIM_GROUPS_CACHE


def __getattr__(name: str):
    if name == "SIM_GROUPS":
        return sim_groups()
    raise AttributeError(name)

#: Wall kind → group, for the measured side.
WALL_GROUPS: Dict[str, tuple] = {
    "Work distribution and load balancing":
        ("lease", "idle", "steal", "donate", "frame"),
    "Reducing": ("reduce",),
    "Branching": ("branch",),
    "Bounding": ("bound",),
}

_WALL_METRIC = "repro_wall_seconds_total"


def step_attribution() -> Dict[str, object]:
    """Bound ``inc`` methods for the three per-step kinds, prefetched so
    the armed step wrapper pays zero registry lookups per node."""
    return {
        kind: _metrics.counter(_WALL_METRIC,
                               "wall seconds attributed per activity kind",
                               kind=kind).inc
        for kind in ("reduce", "bound", "branch")
    }


def add_wall(kind: str, seconds: float) -> None:
    """Attribute ``seconds`` to an engine-level kind (lease/idle/...)."""
    _metrics.counter(_WALL_METRIC,
                     "wall seconds attributed per activity kind",
                     kind=kind).inc(seconds)


def wall_by_kind() -> Dict[str, float]:
    """The registry's current per-kind wall attribution, kinds with a
    nonzero total only."""
    vals = _metrics.REGISTRY.values_by_label(_WALL_METRIC, "kind")
    return {k: v for k, v in vals.items() if v > 0.0}


def wall_obs_keys() -> Dict[str, float]:
    """This process's attribution as ``obs_<kind>_s`` keys — the shape a
    worker folds into its comms dict so ``CommStats.totals()`` sums the
    attributions home without any new wire fields."""
    return {f"obs_{k}_s": v for k, v in wall_by_kind().items()}


def wall_from_obs_keys(totals: Mapping[str, float]) -> Dict[str, float]:
    """Inverse of :func:`wall_obs_keys` over a comms totals dict."""
    out: Dict[str, float] = {}
    for key, val in totals.items():
        if key.startswith("obs_") and key.endswith("_s"):
            kind = key[4:-2]
            if isinstance(val, (int, float)) and val > 0:
                out[kind] = out.get(kind, 0.0) + float(val)
    return out


def wall_by_kind_from_spans(spans: Iterable[WallSpan]) -> Dict[str, float]:
    """Self-time attribution over a span tree.

    Each span's duration minus its children's gives self-time;
    ``node_step`` self-time is the branching remainder (find-max, pivot,
    expansion), ``cascade`` → reduce, the rest map by name.  ``solve``
    envelopes carry no attribution of their own.
    """
    spans = list(spans)
    child_time: Dict[str, float] = {}
    for s in spans:
        if s.parent_id:
            child_time[s.parent_id] = child_time.get(s.parent_id, 0.0) \
                + s.duration
    out: Dict[str, float] = {}
    for s in spans:
        self_time = max(0.0, s.duration - child_time.get(s.span_id, 0.0))
        if s.kind == "solve":
            continue
        kind = {"cascade": "reduce", "node_step": "branch"}.get(s.kind, s.kind)
        out[kind] = out.get(kind, 0.0) + self_time
    return {k: v for k, v in out.items() if v > 0.0}


def group_fractions(by_kind: Mapping[str, float],
                    groups: Mapping[str, tuple]) -> Dict[str, float]:
    """Fold kind totals onto the four paper groups, normalized to 1."""
    totals = {
        title: sum(by_kind.get(kind, 0.0) for kind in kinds)
        for title, kinds in groups.items()
    }
    grand = sum(totals.values())
    if grand <= 0:
        return {title: 0.0 for title in groups}
    return {title: v / grand for title, v in totals.items()}


def render_breakdown_table(
        entries: Sequence[Mapping[str, object]]) -> str:
    """The predicted-vs-measured table for reports and ``repro obs``.

    ``entries`` rows carry ``instance``, ``engine``, and per-group
    fraction dicts under ``predicted`` (sim cycles) and/or ``measured``
    (wall seconds); either side may be absent for an engine that only
    exists in one world.
    """
    if not entries:
        return "(no breakdown data)"
    short = {
        "Work distribution and load balancing": "work-dist",
        "Reducing": "reduce",
        "Branching": "branch",
        "Bounding": "bound",
    }
    header = (["instance", "engine", "side"]
              + [short[t] for t in GROUP_TITLES])
    rows: List[List[str]] = []
    for e in entries:
        for side in ("predicted", "measured"):
            fr = e.get(side)
            if not fr:
                continue
            rows.append(
                [str(e.get("instance", "?")), str(e.get("engine", "?")),
                 side]
                + [f"{float(fr.get(t, 0.0)) * 100:5.1f}%"
                   for t in GROUP_TITLES])
    if not rows:
        return "(no breakdown data)"
    widths = [max(len(header[c]), max(len(r[c]) for r in rows))
              for c in range(len(header))]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header), fmt.format(*("-" * w for w in widths))]
    lines += [fmt.format(*r) for r in rows]
    lines.append("predicted = sim cycles by kind (cost model); "
                 "measured = instrumented wall seconds")
    return "\n".join(lines)
