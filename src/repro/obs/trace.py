"""Wall-clock span tracing that survives fork and socket hops.

The sim recorder (:mod:`repro.sim.trace`) attributes *virtual cycles* to
simulated blocks; this module does the same for *wall time* across real
workers.  A :class:`WallTracer` is armed process-wide (:func:`arm`),
records :class:`WallSpan` intervals on a shared monotonic epoch, and the
coordinator merges spans drained home from forked workers (over the
``cpu_process`` event protocol) and remote workers (over the ``net/``
socket frames) into one timeline keyed by real ``(pid, tid)`` lanes.

Identity model:

* ``trace_id`` — one hex string per traced solve, minted by the
  coordinator and propagated verbatim through spawn args and the
  distributed ``init`` frame, so every participating process tags spans
  with the same id.
* ``span_id`` — ``"<pid:x>.<seq:x>"``: unique across processes without
  coordination because the pid is baked in.
* ``parent_id`` — maintained by a per-thread open-span stack, so spans
  nest properly even when engines interleave step and frontier work.

Clock model: spans are seconds relative to the tracer ``epoch``
(``time.monotonic()`` at arm time).  ``CLOCK_MONOTONIC`` is system-wide
on Linux, so forked and local-socket workers inherit a directly
comparable clock; a *remote* host arms with the coordinator's elapsed
offset from the ``init`` frame, which is accurate to one network hop
(documented in ``docs/OBSERVABILITY.md``).

Exports: Chrome trace-event JSON (:func:`to_chrome`, loadable in
Perfetto / ``chrome://tracing``) and an ASCII Gantt
(:func:`render_wall_gantt`) generalized from the sim recorder's
renderer.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "WallSpan",
    "WallTracer",
    "arm",
    "disarm",
    "armed",
    "get",
    "set_worker",
    "span",
    "to_chrome",
    "render_wall_gantt",
    "SPAN_KINDS",
]

#: The span taxonomy.  ``node_step`` wraps one search-tree node;
#: ``cascade`` (reduction fixpoint) and ``bound`` (prune evaluation) nest
#: inside it; ``lease`` / ``idle`` / ``steal`` / ``donate`` are frontier
#: and supervision work; ``frame`` is socket codec+transport time;
#: ``solve`` is the whole-run envelope.
SPAN_KINDS = ("solve", "node_step", "cascade", "bound",
              "lease", "idle", "steal", "donate", "frame")


class WallSpan:
    """One closed interval: ``[t0, t1]`` seconds relative to the epoch."""

    __slots__ = ("kind", "t0", "t1", "pid", "tid", "span_id", "parent_id")

    def __init__(self, kind: str, t0: float, t1: float, pid: int, tid: int,
                 span_id: str, parent_id: Optional[str]) -> None:
        self.kind = kind
        self.t0 = t0
        self.t1 = t1
        self.pid = pid
        self.tid = tid
        self.span_id = span_id
        self.parent_id = parent_id

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_list(self) -> list:
        """Wire/JSON shape (survives the v2 codec and socket frames)."""
        return [self.kind, self.t0, self.t1, self.pid, self.tid,
                self.span_id, self.parent_id or ""]

    @classmethod
    def from_list(cls, row: Sequence) -> "WallSpan":
        kind, t0, t1, pid, tid, span_id, parent_id = row[:7]
        return cls(str(kind), float(t0), float(t1), int(pid), int(tid),
                   str(span_id), str(parent_id) or None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WallSpan({self.kind!r}, {self.t0:.6f}..{self.t1:.6f}, "
                f"pid={self.pid}, tid={self.tid}, id={self.span_id})")


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: List[Tuple[str, float, str]] = []  # (kind, t0, span_id)
        self.tid: Optional[int] = None


class WallTracer:
    """Per-process span collector for one ``trace_id``.

    ``begin``/``end`` are the hot-path pair: ``begin`` pushes onto a
    per-thread stack (establishing parentage), ``end`` pops and appends
    a :class:`WallSpan`.  Spans beyond ``max_spans`` are counted in
    ``dropped`` instead of stored, bounding memory on huge trees.
    """

    DEFAULT_MAX_SPANS = 2_000_000

    def __init__(self, trace_id: Optional[str] = None,
                 epoch: Optional[float] = None,
                 max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.epoch = time.monotonic() if epoch is None else float(epoch)
        self.max_spans = int(max_spans)
        self.spans: List[WallSpan] = []
        self.dropped = 0
        self._pid = os.getpid()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._local = _ThreadState()

    # -- identity ----------------------------------------------------------

    def _next_id(self) -> str:
        with self._seq_lock:
            self._seq += 1
            return f"{self._pid:x}.{self._seq:x}"

    def now(self) -> float:
        return time.monotonic() - self.epoch

    def set_tid(self, tid: int) -> None:
        """Pin this thread's lane id (worker index); defaults to 0."""
        self._local.tid = int(tid)

    # -- hot path ----------------------------------------------------------

    def begin(self, kind: str) -> Tuple[str, float, str]:
        token = (kind, time.monotonic() - self.epoch, self._next_id())
        self._local.stack.append(token)
        return token

    def end(self, token: Tuple[str, float, str]) -> None:
        stack = self._local.stack
        # Pop back to (and including) the token; tolerates a crashed
        # child span that never closed (fault-injection recovery paths).
        while stack:
            top = stack.pop()
            if top is token:
                break
        parent_id = stack[-1][2] if stack else None
        kind, t0, span_id = token
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        tid = self._local.tid
        self.spans.append(WallSpan(kind, t0, time.monotonic() - self.epoch,
                                   self._pid, 0 if tid is None else tid,
                                   span_id, parent_id))

    # -- merge / drain -----------------------------------------------------

    def absorb(self, rows: Iterable[Sequence]) -> None:
        """Merge serialized spans drained home from a worker."""
        for row in rows:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                continue
            self.spans.append(WallSpan.from_list(row))

    def drain(self) -> List[list]:
        """Serialize and clear — what a worker ships in its result."""
        out = [s.to_list() for s in self.spans]
        self.spans = []
        return out


# ---------------------------------------------------------------------------
# Module-level switchboard (mirrors repro.faults): one tracer per process,
# armed explicitly, inherited by fork.
# ---------------------------------------------------------------------------

_TRACER: Optional[WallTracer] = None


def arm(trace_id: Optional[str] = None, epoch: Optional[float] = None,
        max_spans: int = WallTracer.DEFAULT_MAX_SPANS) -> WallTracer:
    """Install (and return) the process tracer.  Re-arming replaces it."""
    global _TRACER
    _TRACER = WallTracer(trace_id, epoch, max_spans)
    return _TRACER


def disarm() -> Optional[WallTracer]:
    """Remove the process tracer; returns it so callers can export."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def armed() -> bool:
    return _TRACER is not None


def get() -> Optional[WallTracer]:
    return _TRACER


def set_worker(tid: int) -> None:
    """Tag the current thread's spans with a worker lane id."""
    if _TRACER is not None:
        _TRACER.set_tid(tid)


class span:
    """``with span("lease"): ...`` — no-op when disarmed.

    For code that runs a few times per solve (leases, frames, drains);
    the per-node hot path uses construction-time binding instead (see
    :class:`repro.core.nodestep.NodeStep`).
    """

    __slots__ = ("kind", "_token", "_tracer")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._tracer = _TRACER
        self._token = None

    def __enter__(self) -> "span":
        if self._tracer is not None:
            self._token = self._tracer.begin(self.kind)
        return self

    def __exit__(self, *exc) -> None:
        if self._tracer is not None and self._token is not None:
            self._tracer.end(self._token)


# ---------------------------------------------------------------------------
# Exports.
# ---------------------------------------------------------------------------


def to_chrome(spans: Iterable[WallSpan], trace_id: str = "",
              dropped: int = 0) -> Dict[str, object]:
    """Chrome trace-event JSON (the ``{"traceEvents": [...]}`` wrapper).

    Complete events (``ph: "X"``) with microsecond timestamps relative
    to the trace epoch; ``pid`` is the real OS pid, ``tid`` the worker
    lane.  Loadable in Perfetto or ``chrome://tracing``.
    """
    events: List[Dict[str, object]] = []
    for s in spans:
        events.append({
            "name": s.kind,
            "cat": "wall",
            "ph": "X",
            "ts": round(s.t0 * 1e6, 3),
            "dur": round(max(0.0, s.duration) * 1e6, 3),
            "pid": s.pid,
            "tid": s.tid,
            "args": {"span_id": s.span_id, "parent_id": s.parent_id or ""},
        })
    return {
        "displayTimeUnit": "ms",
        "traceEvents": events,
        "otherData": {"trace_id": trace_id, "dropped_spans": dropped,
                      "producer": "repro.obs.trace"},
    }


def dump_chrome(path: str, tracer: WallTracer) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome(tracer.spans, tracer.trace_id, tracer.dropped),
                  fh)
        fh.write("\n")


def load_chrome(path: str) -> List[WallSpan]:
    """Inverse of :func:`dump_chrome` (for ``repro obs view``)."""
    with open(path) as fh:
        doc = json.load(fh)
    spans: List[WallSpan] = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        t0 = float(ev["ts"]) / 1e6
        spans.append(WallSpan(str(ev.get("name", "?")), t0,
                              t0 + float(ev.get("dur", 0.0)) / 1e6,
                              int(ev.get("pid", 0)), int(ev.get("tid", 0)),
                              str(args.get("span_id", "")),
                              str(args.get("parent_id", "")) or None))
    return spans


#: Dominant-glyph grouping for the ASCII Gantt, mirroring the sim
#: renderer's work/reduce/branch/limbo families.
_GROUP_GLYPHS = (
    ("w", ("lease", "idle", "steal", "donate", "frame")),
    ("r", ("cascade",)),
    ("l", ("bound",)),
    ("b", ("node_step", "solve")),
)
_KIND_GLYPH = {k: g for g, kinds in _GROUP_GLYPHS for k in kinds}


def render_wall_gantt(spans: Sequence[WallSpan], *, width: int = 80,
                      legend: bool = True) -> str:
    """ASCII Gantt over wall time: one lane per ``(pid, tid)``, the
    dominant activity glyph per time bucket (generalized from
    ``repro.sim.trace.render_gantt``)."""
    if not spans:
        return "(no spans)"
    lanes = sorted({(s.pid, s.tid) for s in spans})
    lane_index = {lane: i for i, lane in enumerate(lanes)}
    t_lo = min(s.t0 for s in spans)
    t_hi = max(s.t1 for s in spans)
    extent = max(t_hi - t_lo, 1e-9)
    bucket = extent / width
    # weight[lane][col][glyph] -> seconds of that family in the bucket
    weights = [[{} for _ in range(width)] for _ in lanes]
    for s in spans:
        glyph = _KIND_GLYPH.get(s.kind, "b")
        if s.kind in ("node_step", "solve"):
            # container spans would shadow their nested children; weight
            # them lightly so self-time (branching) shows only where no
            # child span covers the bucket.
            weight = 0.25
        else:
            weight = 1.0
        c0 = int((s.t0 - t_lo) / bucket)
        c1 = int((s.t1 - t_lo) / bucket)
        row = weights[lane_index[(s.pid, s.tid)]]
        for c in range(max(0, c0), min(width - 1, c1) + 1):
            seg_lo = t_lo + c * bucket
            seg_hi = seg_lo + bucket
            overlap = min(s.t1, seg_hi) - max(s.t0, seg_lo)
            if overlap <= 0:
                overlap = 1e-12
            cell = row[c]
            cell[glyph] = cell.get(glyph, 0.0) + overlap * weight
    label_w = max(len(f"{p}/{t}") for p, t in lanes)
    out: List[str] = []
    out.append(f"wall gantt: {len(spans)} spans over {extent * 1e3:.2f} ms "
               f"({len(lanes)} lanes)")
    for lane in lanes:
        row = weights[lane_index[lane]]
        cells = []
        for cell in row:
            if not cell:
                cells.append(".")
            else:
                cells.append(max(cell.items(), key=lambda kv: kv[1])[0])
        out.append(f"{lane[0]}/{lane[1]}".rjust(label_w) + " |"
                   + "".join(cells) + "|")
    if legend:
        out.append(" " * label_w
                   + "  b=branch/step r=reduce l=bound w=work-dist .=gap")
    return "\n".join(out)
