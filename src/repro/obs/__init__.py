"""The telemetry plane: metrics, wall tracing, activity breakdowns.

The fifth orthogonal subsystem (after ENGINES, FRONTIERS, BOUNDS,
KERNELS): every engine *emits into* it, nothing *depends on* it, and the
whole plane is disarmed by default with construction-time binding on hot
paths — a solve that never arms telemetry runs the same closures,
allocations, and branch counts as before this package existed.

* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  histograms, JSON snapshot + Prometheus exposition;
* :mod:`repro.obs.trace` — wall-clock spans with trace/span ids that
  survive the fork and socket hops, Chrome trace JSON + ASCII Gantt;
* :mod:`repro.obs.breakdown` — per-kind wall attribution mirrored onto
  the sim cost model's activity groups (predicted vs measured).

:func:`step_telemetry` is the single integration point the node-step
core uses: it returns ``None`` when the plane is disarmed (so
:class:`~repro.core.nodestep.NodeStep` binds its bare closure,
untouched) and a :class:`StepTelemetry` wrapper-factory when armed.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from . import breakdown, metrics, trace

__all__ = ["metrics", "trace", "breakdown", "StepTelemetry",
           "step_telemetry", "armed", "arm", "disarm"]


def armed() -> bool:
    """Is any part of the plane armed?"""
    return metrics.armed() or trace.armed()


def arm(trace_id: Optional[str] = None, *, with_trace: bool = True,
        with_metrics: bool = True, epoch: Optional[float] = None,
        max_spans: int = trace.WallTracer.DEFAULT_MAX_SPANS
        ) -> Optional[trace.WallTracer]:
    """Arm the plane for one solve/run.  Returns the tracer (if any)."""
    tracer = None
    if with_trace:
        tracer = trace.arm(trace_id, epoch, max_spans)
    if with_metrics:
        metrics.arm()
    return tracer


def disarm() -> Optional[trace.WallTracer]:
    """Disarm everything; returns the detached tracer for export."""
    metrics.disarm()
    return trace.disarm()


class StepTelemetry:
    """Wrapper factory for the instrumented node step.

    Built once per :class:`NodeStep` construction when the plane is
    armed.  ``wrap_reducer``/``wrap_prune`` time the two inner sections
    (emitting ``cascade``/``bound`` spans when tracing); ``wrap_run``
    times the whole step (a ``node_step`` span) and attributes the
    remainder — find-max, pivot, child expansion — to ``branch``.
    Section times flow through a two-slot list shared by the closures:
    one NodeStep serves one worker thread, so no locking.
    """

    __slots__ = ("tracer", "attrib", "_cell")

    def __init__(self, tracer: Optional[trace.WallTracer],
                 attrib: Optional[Dict[str, Callable[[float], None]]]) -> None:
        self.tracer = tracer
        self.attrib = attrib
        self._cell = [0.0, 0.0]  # [reduce_s, bound_s] of the current step

    def wrap_reducer(self, reducer: Callable) -> Callable:
        clock = time.perf_counter
        tracer = self.tracer
        cell = self._cell

        def timed_reducer(*args, **kwargs):
            token = tracer.begin("cascade") if tracer is not None else None
            t0 = clock()
            try:
                reducer(*args, **kwargs)
            finally:
                cell[0] += clock() - t0
                if token is not None:
                    tracer.end(token)

        return timed_reducer

    def wrap_prune(self, prune: Callable) -> Callable:
        clock = time.perf_counter
        tracer = self.tracer
        cell = self._cell

        def timed_prune(state):
            token = tracer.begin("bound") if tracer is not None else None
            t0 = clock()
            try:
                return prune(state)
            finally:
                cell[1] += clock() - t0
                if token is not None:
                    tracer.end(token)

        return timed_prune

    def wrap_run(self, run: Callable) -> Callable:
        clock = time.perf_counter
        tracer = self.tracer
        attrib = self.attrib
        cell = self._cell

        def telemetry_run(state):
            cell[0] = 0.0
            cell[1] = 0.0
            token = tracer.begin("node_step") if tracer is not None else None
            t0 = clock()
            try:
                return run(state)
            finally:
                total = clock() - t0
                if token is not None:
                    tracer.end(token)
                if attrib is not None:
                    attrib["reduce"](cell[0])
                    attrib["bound"](cell[1])
                    attrib["branch"](max(0.0, total - cell[0] - cell[1]))

        return telemetry_run


def step_telemetry() -> Optional[StepTelemetry]:
    """The armed-plane handle for node-step construction, else ``None``."""
    tracer = trace.get()
    attrib = breakdown.step_attribution() if metrics.armed() else None
    if tracer is None and attrib is None:
        return None
    return StepTelemetry(tracer, attrib)
