"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The plane is **disarmed by default** and armed explicitly per solve/run
(``arm()``), mirroring the construction-time binding discipline of
:mod:`repro.core.nodestep` and :mod:`repro.faults`: the disarmed mutator
path is a single module-global read and branch (``if not _armed:
return``) — no allocation, no lock, no dict lookup — so instruments can
live permanently on hot paths.  Instrument *creation* (``counter()``,
``gauge()``, ``histogram()``) is the expensive, locked operation; do it
once at construction/arm time and bind the returned object (or its
``inc``/``observe`` bound method) into your closure.

Export formats:

* :meth:`MetricsRegistry.snapshot` — a plain JSON-able dict, the shape
  persisted by the experiment store and printed by ``repro obs view``;
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  (``# TYPE``/``# HELP`` + samples), the shape a future ``repro serve``
  scrape endpoint returns verbatim.

This module absorbs the ad-hoc stat surfaces that grew per-engine:
``CommStats`` dictionaries are published via :func:`publish_comms`,
fault-supervision events via :func:`publish_supervision`, and
``SearchStats`` node counters via :func:`publish_search`, so one
``snapshot()`` sees every engine through the same names.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "arm",
    "disarm",
    "armed",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "to_prometheus",
    "prometheus_from_snapshot",
    "reset",
    "publish_comms",
    "publish_supervision",
    "publish_search",
]

# ---------------------------------------------------------------------------
# Arming switch.  One module-level bool; every mutator reads it first.
# ---------------------------------------------------------------------------

_armed = False


def arm() -> None:
    """Arm the plane: instrument mutators start recording."""
    global _armed
    _armed = True


def disarm() -> None:
    """Disarm the plane: mutators return after one branch."""
    global _armed
    _armed = False


def armed() -> bool:
    return _armed


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Mapping[str, str]) -> LabelItems:
    items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for k, _ in items:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name: {k!r}")
    return items


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(items: LabelItems, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


# ---------------------------------------------------------------------------
# Instruments.  Mutators are the hot path: one global read, one branch.
# ---------------------------------------------------------------------------


class Counter:
    """Monotonically increasing count (events, bytes, seconds of work)."""

    __slots__ = ("name", "help", "labels", "_value")

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _armed:
            return
        self._value += amount

    def force(self, amount: float) -> None:
        """Add regardless of arming — for publishing already-collected
        stats (a worker's comms dict) where the cost was paid elsewhere."""
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Gauge:
    """A value that goes up and down (queue depth, live workers)."""

    __slots__ = ("name", "help", "labels", "_value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _armed:
            return
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        if not _armed:
            return
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        if not _armed:
            return
        self._value -= amount

    def force(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Fixed-bucket histogram (latencies, span durations).

    ``buckets`` are the inclusive upper bounds, ascending; an implicit
    ``+Inf`` bucket catches the tail.  Bucket layout is fixed at creation
    so ``observe`` is a bisect plus three adds — no resizing on the hot
    path.
    """

    __slots__ = ("name", "help", "labels", "bounds", "counts", "_sum", "_count")

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float],
                 help: str = "", labels: LabelItems = ()) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly ascending")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _armed:
            return
        self.counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0


Instrument = Union[Counter, Gauge, Histogram]


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """Name × labels → instrument.  Creation is locked; mutation is not
    (CPython's GIL makes lost updates vanishingly rare, and telemetry
    tolerates them; do not use counters for program logic)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], Instrument] = {}

    # -- creation (get-or-create; idempotent) ------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Mapping[str, str], **kw) -> Instrument:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        key = (name, _label_items(labels))
        with self._lock:
            inst = self._metrics.get(key)
            if inst is None:
                inst = cls(name, help=help, labels=key[1], **kw)
                self._metrics[key] = inst
            elif type(inst) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {inst.kind}")
            return inst

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, buckets: Sequence[float],
                  help: str = "", **labels: str) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    # -- read side ---------------------------------------------------------

    def instruments(self) -> List[Instrument]:
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def value(self, name: str, **labels: str) -> Optional[float]:
        key = (name, _label_items(labels))
        inst = self._metrics.get(key)
        if inst is None or isinstance(inst, Histogram):
            return None
        return inst.value

    def values_by_label(self, name: str, label: str) -> Dict[str, float]:
        """All samples of ``name``, keyed by one label's value."""
        out: Dict[str, float] = {}
        for (mname, items), inst in list(self._metrics.items()):
            if mname != name or isinstance(inst, Histogram):
                continue
            d = dict(items)
            if label in d:
                out[d[label]] = inst.value
        return out

    def snapshot(self) -> Dict[str, object]:
        """JSON-able snapshot: the persisted / printed shape."""
        metrics: List[Dict[str, object]] = []
        for inst in self.instruments():
            entry: Dict[str, object] = {
                "name": inst.name,
                "type": inst.kind,
                "labels": dict(inst.labels),
            }
            if isinstance(inst, Histogram):
                entry["buckets"] = [list(p) for p in
                                    zip(list(inst.bounds) + ["+Inf"],
                                        inst.counts)]
                entry["sum"] = inst._sum
                entry["count"] = inst._count
            else:
                entry["value"] = inst.value
                if inst.help:
                    entry["help"] = inst.help
            metrics.append(entry)
        return {"armed": _armed, "metrics": metrics}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        seen_header: set = set()
        for inst in self.instruments():
            if inst.name not in seen_header:
                seen_header.add(inst.name)
                if inst.help:
                    lines.append(f"# HELP {inst.name} {inst.help}")
                lines.append(f"# TYPE {inst.name} {inst.kind}")
            if isinstance(inst, Histogram):
                cum = 0
                for bound, n in zip(inst.bounds, inst.counts):
                    cum += n
                    le = 'le="' + repr(bound) + '"'
                    lines.append(
                        f"{inst.name}_bucket{_render_labels(inst.labels, le)} {cum}")
                cum += inst.counts[-1]
                le_inf = 'le="+Inf"'
                lines.append(
                    f"{inst.name}_bucket"
                    f"{_render_labels(inst.labels, le_inf)} {cum}")
                lines.append(
                    f"{inst.name}_sum{_render_labels(inst.labels)} {inst._sum!r}")
                lines.append(
                    f"{inst.name}_count{_render_labels(inst.labels)} {inst._count}")
            else:
                value = inst.value
                text = repr(value) if isinstance(value, float) else str(value)
                lines.append(f"{inst.name}{_render_labels(inst.labels)} {text}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every instrument (instruments stay registered)."""
        with self._lock:
            for inst in self._metrics.values():
                inst._reset()


#: The process-wide default registry every helper below writes into.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "", **labels: str) -> Counter:
    return REGISTRY.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels: str) -> Gauge:
    return REGISTRY.gauge(name, help, **labels)


def histogram(name: str, buckets: Sequence[float],
              help: str = "", **labels: str) -> Histogram:
    return REGISTRY.histogram(name, buckets, help, **labels)


def snapshot() -> Dict[str, object]:
    return REGISTRY.snapshot()


def to_prometheus() -> str:
    return REGISTRY.to_prometheus()


def reset() -> None:
    REGISTRY.reset()


def prometheus_from_snapshot(snap: Mapping[str, object]) -> str:
    """Render a persisted :meth:`MetricsRegistry.snapshot` dict as
    Prometheus text exposition — ``repro obs export`` converts stored
    per-cell snapshots without reconstructing a live registry."""
    lines: List[str] = []
    seen_header: set = set()
    for entry in snap.get("metrics", []):  # type: ignore[union-attr]
        name = str(entry["name"])
        kind = str(entry.get("type", "counter"))
        items = _label_items(entry.get("labels", {}))
        if name not in seen_header:
            seen_header.add(name)
            if entry.get("help"):
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            cum = 0
            for bound, n in entry.get("buckets", []):
                cum += int(n)
                le = 'le="' + (str(bound) if bound == "+Inf"
                               else repr(float(bound))) + '"'
                lines.append(f"{name}_bucket{_render_labels(items, le)} {cum}")
            lines.append(f"{name}_sum{_render_labels(items)} "
                         f"{float(entry.get('sum', 0.0))!r}")
            lines.append(f"{name}_count{_render_labels(items)} "
                         f"{int(entry.get('count', 0))}")
        else:
            lines.append(f"{name}{_render_labels(items)} "
                         f"{float(entry.get('value', 0.0))!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def dump_json(path: str) -> None:
    with open(path, "w") as fh:
        json.dump(REGISTRY.snapshot(), fh, indent=2, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# Bridges from the pre-existing ad-hoc stat surfaces.
# ---------------------------------------------------------------------------


def publish_comms(engine: str, totals: Mapping[str, float]) -> None:
    """Fold a ``CommStats``-shaped totals dict into the registry.

    Every numeric key becomes ``repro_comms_<key>_total{engine=...}`` —
    extra keys (codec counters, wire bytes, obs attributions) survive,
    matching ``CommStats.totals()``'s own sum-everything contract.
    """
    for key, val in totals.items():
        if not isinstance(val, (int, float)):
            continue
        name = re.sub(r"[^a-zA-Z0-9_]", "_", str(key))
        REGISTRY.counter(f"repro_comms_{name}_total",
                         "per-engine communication totals",
                         engine=engine).force(float(val))


def publish_supervision(engine: str, events: Mapping[str, float]) -> None:
    """Fault-supervision outcomes (PR 6) as first-class metrics:
    ``recovered`` / ``respawns`` / ``retired_slots`` / ``lost_subtrees``
    / ``inline_drains`` land on
    ``repro_supervision_events_total{engine=,event=}``."""
    for event, val in events.items():
        if not isinstance(val, (int, float)) or not val:
            continue
        REGISTRY.counter("repro_supervision_events_total",
                         "worker supervision events by kind",
                         engine=engine, event=str(event)).force(float(val))


def publish_search(engine: str, nodes: int, optimum: Optional[int] = None,
                   wall_seconds: Optional[float] = None) -> None:
    """Headline search outcomes for one solve."""
    REGISTRY.counter("repro_nodes_visited_total",
                     "search tree nodes visited", engine=engine).force(nodes)
    if wall_seconds is not None:
        REGISTRY.counter("repro_solve_wall_seconds_total",
                         "wall time spent solving", engine=engine
                         ).force(float(wall_seconds))
    if optimum is not None:
        REGISTRY.gauge("repro_last_optimum",
                       "cover size of the most recent solve",
                       engine=engine).force(float(optimum))
