#!/usr/bin/env python
"""Reproduce the paper's Fig. 5 observation interactively.

Runs StackOnly and Hybrid on a hard high-degree instance and prints each
SM's share of the traversal as an ASCII bar chart — the same per-SM
tree-nodes-visited metric as the paper's Fig. 5, where StackOnly leaves
one SM doing ~64x the average work while Hybrid keeps every SM within a
few percent of the mean.

Run:  python examples/load_balance_study.py
"""

import numpy as np

from repro.analysis.load_balance import load_summary_from_metrics
from repro.engines.hybrid import HybridEngine
from repro.engines.stackonly import StackOnlyEngine
from repro.graph.generators.phat import phat_complement
from repro.sim.device import SMALL_SIM


def bars(normalized: np.ndarray, width: int = 50) -> str:
    top = max(normalized.max(), 1.0)
    out = []
    for sm, load in enumerate(normalized):
        bar = "#" * max(1, int(load / top * width)) if load > 0 else ""
        out.append(f"  SM{sm:02d} |{bar:<{width}s}| {load:5.2f}x mean")
    return "\n".join(out)


def main() -> None:
    graph = phat_complement(90, 3, seed=303)   # the p_hat_300_3 analog
    print(f"instance: {graph} (hard, high-degree)\n")

    for name, engine in (
        ("StackOnly (prior work: fixed-depth sub-trees)",
         StackOnlyEngine(device=SMALL_SIM, start_depth=6)),
        ("Hybrid (the paper: local stacks + global worklist)",
         HybridEngine(device=SMALL_SIM)),
    ):
        res = engine.solve_mvc(graph)
        summary = load_summary_from_metrics(res.metrics)
        print(f"{name}")
        print(f"  optimum {res.optimum}, {res.nodes_visited} tree nodes, "
              f"virtual time {res.sim_seconds * 1e3:.2f} ms")
        print(bars(res.metrics.normalized_load()))
        print(f"  spread: min {summary.min:.2f}x / max {summary.max:.2f}x of mean, "
              f"imbalance (max/mean) {summary.imbalance:.2f}\n")

    print("The StackOnly bars concentrate the work on few SMs (big sub-trees");
    print("are pinned to whichever block got them); the Hybrid bars are flat.")


if __name__ == "__main__":
    main()
