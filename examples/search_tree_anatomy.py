#!/usr/bin/env python
"""Why the vertex cover search tree defeats static parallelisation.

Section III of the paper argues from two structural properties — the tree
is *narrow* and *highly imbalanced* — and every design decision follows.
This example measures both properties on a real traversal and then shows
two consequences:

1. a static fixed-depth split (prior work) inherits the measured
   imbalance almost exactly;
2. a disconnected instance is exponentially cheaper to solve per
   component (the decomposition utility).

Run:  python examples/search_tree_anatomy.py
"""

from repro.analysis.tree_shape import measure_tree_shape, render_tree_shape
from repro.core.decompose import optimum_via_pvc, solve_mvc_by_components
from repro.core.sequential import solve_mvc_sequential
from repro.engines.stackonly import StackOnlyEngine
from repro.graph.generators.phat import phat_complement
from repro.graph.generators.structured import disjoint_union
from repro.sim.device import SMALL_SIM


def main() -> None:
    graph = phat_complement(90, 3, seed=303)   # the p_hat_300_3 analog
    print(f"instance: {graph}\n")

    # -- 1. anatomy of the tree -------------------------------------------
    shape = measure_tree_shape(graph, node_budget=40_000)
    print(render_tree_shape(shape, "p_hat_300_3 analog"))

    depth32 = shape.depth_for_width(32)
    print(f"\nTo feed 32 thread blocks, a static scheme must descend to "
          f"depth {depth32} — and at that depth the largest sub-tree is "
          f"{shape.imbalance_at(8) or 0:.1f}x the mean (depth-8 sample): "
          f"whichever block draws it becomes the straggler.")

    # -- 2. the static split inherits the imbalance ------------------------
    res = StackOnlyEngine(device=SMALL_SIM, start_depth=6).solve_mvc(graph)
    loads = res.metrics.normalized_load()
    print(f"\nStackOnly per-SM load (nodes/mean): "
          f"min {loads.min():.2f}x, max {loads.max():.2f}x "
          f"— the measured tree imbalance, realised as hardware idleness.")

    # -- 3. decomposition: the flip side -----------------------------------
    two = disjoint_union(phat_complement(50, 3, seed=1), phat_complement(50, 3, seed=2))
    joint = solve_mvc_sequential(two)
    split = solve_mvc_by_components(two)
    print(f"\ndisjoint union of two instances: joint search visits "
          f"{joint.stats.nodes_visited} nodes, per-component search "
          f"{split.nodes_visited} ({joint.stats.nodes_visited / max(split.nodes_visited, 1):.1f}x less) "
          f"for the same optimum {split.optimum}.")

    # -- 4. bonus: the optimum via the parameterized oracle ----------------
    probes = []
    opt = optimum_via_pvc(graph, on_probe=lambda k, f: probes.append(k))
    print(f"\nPVC binary search recovered the optimum {opt} with "
          f"{len(probes)} feasibility probes (ks tried: {probes}).")


if __name__ == "__main__":
    main()
