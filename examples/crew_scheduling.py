#!/usr/bin/env python
"""Crew-rostering conflict resolution via vertex cover.

The paper's introduction motivates vertex cover with scheduling and crew
rostering (Vigo et al.): when two duties conflict (overlapping time
windows, same qualification pool), at least one of the two must be
reassigned.  The duties whose reassignment resolves *every* conflict form
a vertex cover of the conflict graph — and paying the fewest reassignment
penalties means finding a *minimum* one.

This example builds a synthetic duty roster, derives its conflict graph,
and uses the library to answer two planning questions:

* MVC — what is the cheapest full conflict resolution?
* PVC — can we resolve everything by reassigning at most ``k`` duties
  (e.g. the number of standby crews available)?

Run:  python examples/crew_scheduling.py
"""

from dataclasses import dataclass

import numpy as np

from repro.core.solver import solve_mvc, solve_pvc
from repro.core.verify import assert_valid_cover
from repro.graph.csr import CSRGraph


@dataclass
class Duty:
    """One crew duty: a time window on a qualification group."""

    name: str
    start: int     # minutes from midnight
    end: int
    group: str     # qualification pool; conflicts only arise within a pool


def build_roster(n_duties: int = 60, seed: int = 7) -> list[Duty]:
    """A synthetic day roster with deliberately tight turnarounds."""
    rng = np.random.default_rng(seed)
    groups = ["longhaul", "regional", "cargo"]
    duties = []
    for i in range(n_duties):
        start = int(rng.integers(0, 22 * 60))
        length = int(rng.integers(90, 360))
        duties.append(Duty(
            name=f"D{i:03d}",
            start=start,
            end=start + length,
            group=groups[int(rng.integers(len(groups)))],
        ))
    return duties


def conflict_graph(duties: list[Duty], min_turnaround: int = 45) -> CSRGraph:
    """Two duties conflict if their windows (plus turnaround) overlap
    within the same qualification pool."""
    edges = []
    for i, a in enumerate(duties):
        for j in range(i + 1, len(duties)):
            b = duties[j]
            if a.group != b.group:
                continue
            if a.start < b.end + min_turnaround and b.start < a.end + min_turnaround:
                edges.append((i, j))
    return CSRGraph.from_edges(len(duties), edges)


def main() -> None:
    duties = build_roster()
    graph = conflict_graph(duties)
    print(f"roster: {len(duties)} duties, conflict graph {graph}")

    # -- cheapest full resolution (MVC) ----------------------------------
    out = solve_mvc(graph, engine="hybrid")
    assert_valid_cover(graph, out.cover, out.optimum)
    reassigned = [duties[v].name for v in sorted(out.cover.tolist())]
    print(f"\ncheapest full resolution reassigns {out.optimum} duties:")
    print("  " + ", ".join(reassigned[:12]) + (" ..." if len(reassigned) > 12 else ""))

    # The untouched duties are conflict-free by construction (they form an
    # independent set of the conflict graph).
    untouched = graph.n - out.optimum
    print(f"  {untouched} duties fly exactly as planned")

    # -- staffing what-ifs (PVC) ------------------------------------------
    print("\nstandby-crew what-ifs:")
    for standby in (out.optimum - 2, out.optimum, out.optimum + 3):
        res = solve_pvc(graph, standby, engine="hybrid")
        verdict = "enough" if res.feasible else "NOT enough"
        print(f"  {standby:3d} standby crews: {verdict}")


if __name__ == "__main__":
    main()
