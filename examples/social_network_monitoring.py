#!/usr/bin/env python
"""Monitoring a social network with the fewest observers.

A classic vertex-cover application from the paper's motivation list
(social science / telecommunication): placing monitors on *users* so that
every *relationship* (edge) has at least one monitored endpoint — e.g.
content moderators covering every conversation channel, or probes
covering every link of a network.

This example works on a LastFM-Asia-like social graph (heavy-tailed
preferential attachment, as in the paper's low-degree suite) and compares
three ways to pick the monitor set:

1. the greedy heuristic (the paper's upper-bound initialiser),
2. the exact minimum via the hybrid simulated-GPU engine,
3. the exact minimum via the real multi-process CPU engine.

Run:  python examples/social_network_monitoring.py
"""

from repro.core.greedy import greedy_cover
from repro.core.solver import solve_mvc
from repro.core.verify import assert_valid_cover, cover_complement_is_independent
from repro.graph.generators.random_graphs import watts_strogatz
from repro.sim.device import SMALL_SIM


def main() -> None:
    # A small-world community graph (the shape of the paper's Sister
    # Cities instance): the long-range shortcuts create odd cycles that
    # the greedy heuristic handles suboptimally, so exact search pays off.
    graph = watts_strogatz(150, 4, 0.3, seed=21)
    print(f"social graph: {graph} (small-world with rewired shortcuts)")

    # -- 1. the greedy heuristic ------------------------------------------
    greedy = greedy_cover(graph)
    print(f"\ngreedy monitors: {greedy.size} "
          f"(degree-one rule fired {greedy.reductions.degree_one}x, "
          f"max-degree picks {greedy.max_degree_picks})")

    # -- 2. exact, simulated GPU ------------------------------------------
    exact = solve_mvc(graph, engine="hybrid", device=SMALL_SIM)
    assert_valid_cover(graph, exact.cover, exact.optimum)
    print(f"exact minimum:   {exact.optimum} "
          f"(visited {exact.nodes_visited} search-tree nodes, "
          f"virtual GPU time {exact.sim_seconds * 1e3:.3f} ms)")
    saved = greedy.size - exact.optimum
    print(f"  -> exact search saves {saved} monitor{'s' if saved != 1 else ''} over greedy")

    # everyone NOT monitored forms an independent set: no unmonitored
    # relationship exists (König duality sanity check)
    assert cover_complement_is_independent(graph, exact.cover)

    # -- 3. exact, real CPU parallelism -----------------------------------
    cpu = solve_mvc(graph, engine="cpu-process", n_workers=4)
    print(f"cpu-process x4:  {cpu.optimum} "
          f"(wall {cpu.wall_seconds:.2f}s, {cpu.nodes_visited} nodes)")
    assert cpu.optimum == exact.optimum

    print("\nBoth exact engines agree; the unmonitored users form an "
          "independent set, so every relationship is observed.")


if __name__ == "__main__":
    main()
