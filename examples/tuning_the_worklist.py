#!/usr/bin/env python
"""Explore the hybrid engine's two tuning knobs (paper Section V-A).

The hybrid scheme has a worklist *capacity* and a donation *threshold*
(blocks donate a child to the worklist whenever its population is below
the threshold).  The paper sweeps sizes of 128K-512K entries and
thresholds of 0.25x-1.0x and reports that sub-optimal choices cost only a
1.18x geometric-mean slowdown — the scheme is robust.

This example reproduces that robustness study at reproduction scale and
prints the full grid, plus what each configuration did to worklist
traffic.

Run:  python examples/tuning_the_worklist.py
"""

from repro.analysis.speedup import geometric_mean
from repro.engines.hybrid import HybridEngine
from repro.graph.generators.phat import phat_complement
from repro.sim.device import SMALL_SIM


def main() -> None:
    graph = phat_complement(90, 3, seed=303)
    print(f"instance: {graph}\n")
    print(f"{'capacity':>9s} {'threshold':>10s} {'virtual ms':>11s} "
          f"{'wl adds':>8s} {'wl peak':>8s} {'sleeps':>7s}")

    results = []
    for capacity in (256, 1024, 4096):
        for fraction in (0.25, 0.5, 1.0):
            engine = HybridEngine(
                device=SMALL_SIM,
                worklist_capacity=capacity,
                worklist_threshold_fraction=fraction,
            )
            res = engine.solve_mvc(graph)
            sleeps = sum(b.wl_sleeps for b in res.metrics.blocks)
            results.append((capacity, fraction, res))
            print(f"{capacity:9d} {int(capacity * fraction):10d} "
                  f"{res.sim_seconds * 1e3:11.3f} "
                  f"{res.worklist_stats.adds:8d} "
                  f"{res.worklist_stats.peak_population:8d} {sleeps:7d}")

    times = [res.makespan_cycles for _, _, res in results]
    best = min(times)
    slowdowns = [t / best for t in times]
    print(f"\ngeomean slowdown vs best configuration: "
          f"{geometric_mean(slowdowns):.2f}x "
          f"(worst {max(slowdowns):.2f}x) — the paper reports 1.18x / 1.32x")
    print("Higher thresholds push more nodes through the worklist (more adds),")
    print("buying marginally better balance at the cost of broker traffic.")


if __name__ == "__main__":
    main()
