#!/usr/bin/env python
"""Quickstart: solve MVC and PVC on a small graph with every engine.

Run:  python examples/quickstart.py
"""

from repro.core.solver import solve_mvc, solve_pvc
from repro.core.verify import assert_valid_cover
from repro.graph.csr import CSRGraph
from repro.graph.generators.phat import phat_complement
from repro.sim.device import TINY_SIM


def main() -> None:
    # --- build a graph --------------------------------------------------
    # Directly from an edge list...
    little = CSRGraph.from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
    print(f"little graph: {little}")

    out = solve_mvc(little)
    print(f"  minimum vertex cover: size {out.optimum}, cover {sorted(out.cover.tolist())}")
    assert_valid_cover(little, out.cover, out.optimum)

    # ...or from a generator.  This is a scaled-down complement of a
    # DIMACS p_hat graph — the hard high-degree family of the paper.
    graph = phat_complement(60, 3, seed=1)
    print(f"\np_hat-style complement: {graph}")

    # --- MVC with each engine -------------------------------------------
    # 'sequential' is the Fig. 1 CPU baseline; 'stackonly' is prior work's
    # fixed-depth GPU scheme; 'hybrid' is the paper's contribution.  The
    # GPU engines run on a simulated device and report virtual time.
    for engine in ("sequential", "stackonly", "hybrid"):
        out = solve_mvc(graph, engine=engine, device=TINY_SIM)
        extra = ""
        if hasattr(out, "sim_seconds"):
            extra = f" [virtual GPU time {out.sim_seconds * 1e3:.2f} ms, " \
                    f"{out.launch.num_blocks} blocks x {out.launch.block_size} threads]"
        nodes = out.nodes_visited if hasattr(out, "nodes_visited") else out.stats.nodes_visited
        print(f"  {engine:10s}: optimum {out.optimum}, {nodes} tree nodes{extra}")
        assert_valid_cover(graph, out.cover, out.optimum)

    # --- PVC: the parameterized formulation ------------------------------
    minimum = solve_mvc(graph).optimum
    for k, label in ((minimum - 1, "k = min - 1"), (minimum, "k = min"), (minimum + 1, "k = min + 1")):
        out = solve_pvc(graph, k, engine="hybrid", device=TINY_SIM)
        verdict = "feasible" if out.feasible else "infeasible"
        print(f"  PVC {label:11s} (k={k}): {verdict}"
              + (f", found a cover of size {out.optimum}" if out.feasible else ""))

    print("\nAll covers verified. Try `python -m repro table1 --quick` next.")


if __name__ == "__main__":
    main()
